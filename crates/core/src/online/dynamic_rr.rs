//! `DynamicRR` — Algorithm 3: the online learning scheduler (Theorem 3).
//!
//! Each time slot:
//!
//! 1. **Threshold learning** (lines 1-9): the continuous threshold range
//!    `Z = [C^th_min, C^th_max]` is discretized into `κ` arms
//!    ([`mec_bandit::LipschitzDomain`]); a successive-elimination policy
//!    tries the active arms round-robin and deactivates any arm whose UCB
//!    falls below another's LCB. The selected arm's value is this slot's
//!    minimum-share threshold `C^th_t`.
//! 2. **Admission** (lines 10-11): arrived requests are sorted by expected
//!    data rate and admitted into `R_t` while the network-wide equal share
//!    stays at least `C^th_t` — the round-robin guard that prevents burst
//!    slots from starving everyone at once.
//! 3. **Assignment** (line 12): admitted jobs go to deadline-feasible
//!    stations. The default mode load-balances (most-residual-capacity
//!    station) with per-station water-filling — the fast equivalent of the
//!    `Heu` + **LP-PT** step; `use_lp` switches to actually solving LP-PT
//!    each slot (faithful, ~100× slower, used in fidelity tests).
//! 4. **Anti-starvation residual pass** (§V's stated purpose: "avoid their
//!    scheduling starvation"): leftover capacity goes to the most-starved
//!    unserved requests — a request's response latency (Eq. 2) is fixed at
//!    *first* service, so an early slice anchors its deadline while the
//!    bulk of its stream is served later.
//! 5. **Feedback**: rewards completed this slot, normalized by the largest
//!    slot reward seen so far, update the chosen arm.

use crate::model::Instance;
use crate::online::{startable_at, useful_compute, SlotCapacity};
use crate::slotlp::{SlotLp, SlotLpSolver, SolverStats, Truncation};
use mec_bandit::{
    ArmId, BanditPolicy, ConfidenceSchedule, DiscountedUcb, EpsilonGreedy, LearnerProbe,
    LipschitzDomain, SuccessiveElimination, ThompsonBeta, Ucb1,
};
use mec_lp::SolverKind;
use mec_sim::{Allocation, SlotContext, SlotPolicy};
use mec_topology::station::StationId;
use mec_topology::units::{total_cmp, Compute};
use serde::{Deserialize, Serialize};

/// Which bandit drives the threshold (successive elimination is the
/// paper's choice; the others are ablations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Learner {
    /// Successive elimination (Algorithm 3, the paper's learner).
    #[default]
    SuccessiveElimination,
    /// UCB1.
    Ucb1,
    /// ε-greedy with the given exploration probability.
    EpsilonGreedy {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
    /// Thompson sampling with Beta posteriors.
    Thompson,
    /// Discounted UCB with the given discount factor — adapts when the
    /// reward landscape drifts (arrival ramps, load swings).
    DiscountedUcb {
        /// Discount factor in `(0, 1]`.
        gamma: f64,
    },
}

/// The concrete learner behind [`DynamicRr`], delegating the
/// [`BanditPolicy`] protocol.
#[derive(Debug, Clone)]
enum LearnerPolicy {
    Se(SuccessiveElimination),
    Ucb(Ucb1),
    Eps(EpsilonGreedy),
    Thompson(ThompsonBeta),
    Ducb(DiscountedUcb),
}

impl LearnerPolicy {
    fn new(kind: Learner, kappa: usize, horizon: u64) -> Self {
        match kind {
            Learner::SuccessiveElimination => Self::Se(SuccessiveElimination::new(
                kappa,
                ConfidenceSchedule::Horizon(horizon),
            )),
            Learner::Ucb1 => Self::Ucb(Ucb1::new(kappa)),
            Learner::EpsilonGreedy { epsilon } => {
                Self::Eps(EpsilonGreedy::new(kappa, epsilon, horizon ^ 0xE9))
            }
            Learner::Thompson => Self::Thompson(ThompsonBeta::new(kappa, horizon ^ 0x7B)),
            Learner::DiscountedUcb { gamma } => Self::Ducb(DiscountedUcb::new(kappa, gamma)),
        }
    }

    fn as_policy_mut(&mut self) -> &mut dyn BanditPolicy {
        match self {
            Self::Se(p) => p,
            Self::Ucb(p) => p,
            Self::Eps(p) => p,
            Self::Thompson(p) => p,
            Self::Ducb(p) => p,
        }
    }

    fn as_policy(&self) -> &dyn BanditPolicy {
        match self {
            Self::Se(p) => p,
            Self::Ucb(p) => p,
            Self::Eps(p) => p,
            Self::Thompson(p) => p,
            Self::Ducb(p) => p,
        }
    }

    fn active_count(&self) -> usize {
        match self {
            Self::Se(p) => p.active_count(),
            other => other.as_policy().arm_count(),
        }
    }

    fn arm_views(&self) -> Vec<mec_bandit::ArmView> {
        match self {
            Self::Se(p) => p.arm_views(),
            Self::Ucb(p) => p.arm_views(),
            Self::Eps(p) => p.arm_views(),
            Self::Thompson(p) => p.arm_views(),
            Self::Ducb(p) => p.arm_views(),
        }
    }

    fn as_probe_mut(&mut self) -> &mut dyn LearnerProbe {
        match self {
            Self::Se(p) => p,
            Self::Ucb(p) => p,
            Self::Eps(p) => p,
            Self::Thompson(p) => p,
            Self::Ducb(p) => p,
        }
    }

    fn as_probe(&self) -> &dyn LearnerProbe {
        match self {
            Self::Se(p) => p,
            Self::Ucb(p) => p,
            Self::Eps(p) => p,
            Self::Thompson(p) => p,
            Self::Ducb(p) => p,
        }
    }
}

/// Tuning knobs for [`DynamicRr`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicRrConfig {
    /// `C^th_min` in MHz (default 100).
    pub threshold_lo_mhz: f64,
    /// `C^th_max` in MHz (default 1000 — one resource slot).
    pub threshold_hi_mhz: f64,
    /// Number of bandit arms `κ` (default 9).
    pub kappa: usize,
    /// Horizon hint `T` for the confidence radii (default 400 slots).
    pub horizon_hint: u64,
    /// Solve LP-PT per slot instead of the fast water-filling assignment.
    pub use_lp: bool,
    /// Which bandit learns the threshold (ablation hook).
    pub learner: Learner,
    /// Which simplex solves LP-PT (`use_lp` mode only).
    #[serde(default)]
    pub solver: SolverKind,
    /// Carry the optimal basis across slots (`use_lp` + revised only).
    #[serde(default)]
    pub warm_start: bool,
}

impl Default for DynamicRrConfig {
    fn default() -> Self {
        Self {
            threshold_lo_mhz: 100.0,
            threshold_hi_mhz: 1000.0,
            kappa: 9,
            horizon_hint: 400,
            use_lp: false,
            learner: Learner::SuccessiveElimination,
            solver: SolverKind::default(),
            warm_start: true,
        }
    }
}

/// Algorithm 3 (`DynamicRR`).
#[derive(Debug, Clone)]
pub struct DynamicRr {
    config: DynamicRrConfig,
    domain: LipschitzDomain,
    policy: LearnerPolicy,
    /// Arm pulled this slot (fed back in [`SlotPolicy::observe`]).
    current_arm: Option<ArmId>,
    /// Running normalizer for the bandit reward signal.
    max_slot_reward: f64,
    /// Cumulative normalized reward fed to the learner (telemetry).
    cum_reward: f64,
    /// Instance copy for the LP-PT mode (`None` in fast mode).
    lp_instance: Option<Instance>,
    /// Persistent slot-LP solver carrying the warm-start cache.
    lp_solver: SlotLpSolver,
    /// The last slot's decision digest (recorded only while the learner
    /// probe is attached — the flight recorder's per-slot feed).
    last_decision: Option<mec_sim::DecisionRecord>,
}

impl DynamicRr {
    /// Creates the fast (water-filling) variant.
    ///
    /// # Panics
    ///
    /// Panics if the threshold range is inverted or `kappa == 0`.
    pub fn new(config: DynamicRrConfig) -> Self {
        let domain = LipschitzDomain::new(
            config.threshold_lo_mhz,
            config.threshold_hi_mhz,
            config.kappa,
        );
        let policy = LearnerPolicy::new(config.learner, config.kappa, config.horizon_hint);
        let lp_solver = SlotLpSolver::new(config.solver).warm_start(config.warm_start);
        Self {
            config,
            domain,
            policy,
            current_arm: None,
            max_slot_reward: 0.0,
            cum_reward: 0.0,
            lp_instance: None,
            lp_solver,
            last_decision: None,
        }
    }

    /// Creates the faithful LP-PT variant (slow; solves one LP per slot).
    pub fn with_lp(instance: Instance, mut config: DynamicRrConfig) -> Self {
        config.use_lp = true;
        let mut s = Self::new(config);
        s.lp_instance = Some(instance);
        s
    }

    /// The bandit's current best threshold estimate in MHz.
    pub fn learned_threshold(&self) -> f64 {
        self.domain.value(self.policy.as_policy().best())
    }

    /// Number of still-active arms (shrinks as elimination proceeds; other
    /// learners never eliminate, so they report the full arm count).
    pub fn active_arms(&self) -> usize {
        self.policy.active_count()
    }

    /// Slot-LP solver counters (all zero outside `use_lp` mode).
    pub fn solver_stats(&self) -> SolverStats {
        self.lp_solver.stats()
    }

    /// Line 10-11: admit sorted-by-expected-rate requests while the
    /// network-wide equal share stays above the threshold.
    fn admit(&self, ctx: &SlotContext<'_>, threshold: Compute) -> Vec<usize> {
        let mut order: Vec<usize> = (0..ctx.views.len())
            .filter(|&i| ctx.views[i].schedulable())
            .collect();
        order.sort_by(|&a, &b| {
            total_cmp(&ctx.views[a].rate_estimate(), &ctx.views[b].rate_estimate())
        });
        let total = ctx.topo.total_capacity();
        let mut admitted = Vec::new();
        for i in order {
            let count = admitted.len() + 1;
            let share = total / count as f64;
            if share.as_mhz() + 1e-9 < threshold.as_mhz() && !admitted.is_empty() {
                break;
            }
            admitted.push(i);
        }
        admitted
    }

    /// Fast assignment: load-balance each admitted job to the feasible
    /// station with the most residual capacity, then water-fill per
    /// station.
    fn assign_fast(&self, ctx: &SlotContext<'_>, admitted: &[usize]) -> Vec<Allocation> {
        let mut capacity = SlotCapacity::new(ctx);
        let mut per_station: Vec<Vec<usize>> = vec![Vec::new(); ctx.topo.station_count()];
        for &i in admitted {
            let view = &ctx.views[i];
            let best = ctx
                .topo
                .station_ids()
                .filter(|&s| startable_at(view, ctx, s))
                .max_by(|&a, &b| total_cmp(&capacity.remaining(a), &capacity.remaining(b)));
            if let Some(s) = best {
                // Reserve the job's useful demand so subsequent placement
                // decisions see the updated residual picture.
                let need = useful_compute(view, ctx);
                capacity.take(s, need);
                per_station[s.index()].push(i);
            }
        }
        // Re-derive exact grants per station by water-filling the *full*
        // station capacity across its chosen jobs.
        let mut out = Vec::new();
        for station in ctx.topo.station_ids() {
            let local = &per_station[station.index()];
            if local.is_empty() {
                continue;
            }
            let caps: Vec<Compute> = local
                .iter()
                .map(|&i| useful_compute(&ctx.views[i], ctx))
                .collect();
            let grants = mec_sim::sharing::water_fill(ctx.topo.station(station).capacity(), &caps);
            for (&i, grant) in local.iter().zip(grants) {
                if grant.is_positive() {
                    out.push(Allocation {
                        request: ctx.views[i].job.id(),
                        station,
                        compute: grant,
                    });
                }
            }
        }
        out
    }

    /// Faithful assignment: running jobs stay on their first-service
    /// station; the **LP-PT** relaxation routes the still-waiting part of
    /// the admitted set; everything is then water-filled per station.
    fn assign_lp(&mut self, ctx: &SlotContext<'_>, admitted: &[usize]) -> Vec<Allocation> {
        let Some(instance) = &self.lp_instance else {
            return self.assign_fast(ctx, admitted);
        };
        let mut per_station: Vec<Vec<usize>> = vec![Vec::new(); ctx.topo.station_count()];
        let mut reserved = vec![Compute::ZERO; ctx.topo.station_count()];
        // Requests are preemptible (§V): running jobs may migrate, so the
        // whole admitted set is routed through LP-PT every slot.
        let waiting: Vec<usize> = admitted.to_vec();
        let subset: Vec<usize> = waiting
            .iter()
            .map(|&i| ctx.views[i].job.id().index())
            .collect();
        let frac = if subset.is_empty() {
            None
        } else {
            let lp = SlotLp::build(
                instance,
                &subset,
                Truncation::PerRequestShare {
                    active: admitted.len().max(1),
                },
            );
            self.lp_solver.solve(&lp, subset.len()).ok()
        };
        for (local, &i) in waiting.iter().enumerate() {
            let view = &ctx.views[i];
            let need = useful_compute(view, ctx);
            // LP-PT's Constraint (23) is deliberately looser than (10), so
            // the fractional solution often piles onto the best station;
            // the Heu-style materialization must therefore respect actual
            // capacities: honor the LP's preferred station only while its
            // reserved load fits, else spread to the most unreserved
            // feasible station (exactly what `Heu`'s migration repair does
            // to an overfull prefix).
            let choice: Option<StationId> = frac.as_ref().and_then(|f| {
                f.for_request(local)
                    .iter()
                    .filter(|(s, _, _)| {
                        startable_at(view, ctx, *s)
                            && (reserved[s.index()] + need).as_mhz()
                                <= ctx.topo.station(*s).capacity().as_mhz() + 1e-9
                    })
                    .max_by(|a, b| total_cmp(&a.2, &b.2))
                    .map(|&(s, _, _)| s)
            });
            let fallback = || {
                ctx.topo
                    .station_ids()
                    .filter(|&s| startable_at(view, ctx, s))
                    .max_by(|&a, &b| {
                        total_cmp(
                            &(ctx.topo.station(a).capacity() - reserved[a.index()]).as_mhz(),
                            &(ctx.topo.station(b).capacity() - reserved[b.index()]).as_mhz(),
                        )
                    })
            };
            if let Some(s) = choice.or_else(fallback) {
                reserved[s.index()] += need;
                per_station[s.index()].push(i);
            }
        }
        let mut out = Vec::new();
        for station in ctx.topo.station_ids() {
            let local = &per_station[station.index()];
            if local.is_empty() {
                continue;
            }
            let caps: Vec<Compute> = local
                .iter()
                .map(|&i| useful_compute(&ctx.views[i], ctx))
                .collect();
            let grants = mec_sim::sharing::water_fill(ctx.topo.station(station).capacity(), &caps);
            for (&i, grant) in local.iter().zip(grants) {
                if grant.is_positive() {
                    out.push(Allocation {
                        request: ctx.views[i].job.id(),
                        station,
                        compute: grant,
                    });
                }
            }
        }
        if std::env::var("MEC_DEBUG_LP").is_ok() && ctx.slot % 20 == 10 {
            let dist: Vec<usize> = per_station.iter().map(Vec::len).collect();
            let granted: f64 = out.iter().map(|a| a.compute.as_mhz()).sum();
            eprintln!(
                "slot {}: admitted {} dist {:?} granted {:.0} MHz",
                ctx.slot,
                waiting.len(),
                dist,
                granted
            );
        }
        out
    }
}

impl DynamicRr {
    /// Anti-starvation keep-alive (§V's stated goal: "avoid their
    /// scheduling starvation"): whatever capacity the main assignment left
    /// over is handed out in small slices to waiting (never-served)
    /// requests, most-starved first. The response delay of Eq. 2 is fixed
    /// at *first* service (`b_j − a_j`), so a keep-alive slice before the
    /// deadline rescues the request's latency constraint while the bulk of
    /// its stream is served in later slots.
    fn keep_alive(&self, ctx: &SlotContext<'_>, allocations: &mut Vec<Allocation>) {
        let mut used = vec![Compute::ZERO; ctx.topo.station_count()];
        let mut served: Vec<bool> = vec![false; ctx.views.len()];
        let id_to_idx: std::collections::HashMap<_, _> = ctx
            .views
            .iter()
            .enumerate()
            .map(|(i, v)| (v.job.id(), i))
            .collect();
        for a in allocations.iter() {
            used[a.station.index()] += a.compute;
            if let Some(&i) = id_to_idx.get(&a.request) {
                served[i] = true;
            }
        }
        // Work-conserving residual pass, most-starved (longest-waiting)
        // jobs first: the threshold governs the *guaranteed* share of the
        // admitted set; leftover capacity is free to rescue and advance
        // everyone else.
        let mut starved: Vec<usize> = (0..ctx.views.len())
            .filter(|&i| !served[i] && ctx.views[i].schedulable())
            .collect();
        starved.sort_by_key(|&i| std::cmp::Reverse(ctx.views[i].job.waiting_slots(ctx.slot)));
        for i in starved {
            let view = &ctx.views[i];
            let need = useful_compute(view, ctx);
            if !need.is_positive() {
                continue;
            }
            let target = ctx
                .topo
                .station_ids()
                .filter(|&s| startable_at(view, ctx, s))
                .map(|s| {
                    let free =
                        (ctx.topo.station(s).capacity() - used[s.index()]).clamp_non_negative();
                    (s, free)
                })
                .filter(|(_, free)| free.as_mhz() >= 1.0)
                .max_by(|a, b| total_cmp(&a.1, &b.1));
            if let Some((s, free)) = target {
                let grant = need.min(free);
                used[s.index()] += grant;
                allocations.push(Allocation {
                    request: view.job.id(),
                    station: s,
                    compute: grant,
                });
            }
        }
    }

    /// Builds the flight-recorder digest of one slot's decision. All
    /// inputs are deterministic (chosen arm, learner state, allocations),
    /// so the digest stream is byte-reproducible for a fixed seed.
    fn decision_record(
        &self,
        slot: u64,
        arm: ArmId,
        allocations: &[Allocation],
    ) -> mec_sim::DecisionRecord {
        // FNV-1a over the (request, station, grant-millihertz) triples.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        let mut granted_mhz = 0.0;
        for a in allocations {
            mix(a.request.index() as u64);
            mix(a.station.index() as u64);
            mix(a.compute.as_mhz().to_bits());
            granted_mhz += a.compute.as_mhz();
        }
        let policy = self.policy.as_policy();
        let best = policy.best();
        let best_mean = self.policy.arm_views()[best.index()].mean;
        mec_sim::DecisionRecord {
            slot,
            arm: arm.index(),
            value: self.domain.value(arm),
            active_arms: self.policy.active_count() as u64,
            best_arm: best.index(),
            best_mean,
            granted: allocations.len() as u64,
            granted_mhz,
            assign_digest: h,
        }
    }
}

impl SlotPolicy for DynamicRr {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        if ctx.views.iter().all(|v| !v.schedulable()) {
            self.current_arm = None;
            return Vec::new();
        }
        let arm = mec_obs::prof_span!("dynrr.select", self.policy.as_policy_mut().select());
        self.current_arm = Some(arm);
        let threshold = Compute::mhz(self.domain.value(arm));
        let admitted = mec_obs::prof_span!("dynrr.admit", self.admit(ctx, threshold));
        let mut allocations = if self.config.use_lp {
            mec_obs::prof_span!("dynrr.assign_lp", self.assign_lp(ctx, &admitted))
        } else {
            mec_obs::prof_span!("dynrr.assign_fast", self.assign_fast(ctx, &admitted))
        };
        mec_obs::prof_span!("dynrr.keep_alive", self.keep_alive(ctx, &mut allocations));
        if self.policy.as_probe().probe_enabled() {
            self.last_decision = Some(self.decision_record(ctx.slot, arm, &allocations));
        }
        allocations
    }

    fn observe(&mut self, _slot: u64, completed_reward: f64) {
        let Some(arm) = self.current_arm.take() else {
            return;
        };
        self.max_slot_reward = self.max_slot_reward.max(completed_reward);
        let normalized = if self.max_slot_reward > 0.0 {
            (completed_reward / self.max_slot_reward).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.cum_reward += normalized;
        self.policy.as_policy_mut().update(arm, normalized);
    }

    fn telemetry(&self) -> Option<mec_sim::PolicyTelemetry> {
        let views = self.policy.arm_views();
        let policy = self.policy.as_policy();
        let best = policy.best();
        let total = policy.total_pulls();
        let best_mean = views[best.index()].mean;
        let arms = views
            .iter()
            .map(|v| mec_sim::ArmTelemetry {
                arm: v.arm.index(),
                value: self.domain.value(v.arm),
                pulls: v.pulls,
                mean: v.mean,
                ucb: v.ucb,
                lcb: v.lcb,
                active: v.active,
            })
            .collect();
        Some(mec_sim::PolicyTelemetry {
            policy: self.name().to_string(),
            total_pulls: total,
            best_arm: best.index(),
            best_value: self.domain.value(best),
            cum_reward: self.cum_reward,
            regret_proxy: (total as f64 * best_mean - self.cum_reward).max(0.0),
            arms,
            solver: self.config.use_lp.then(|| {
                let s = self.lp_solver.stats();
                mec_sim::SolverTelemetry {
                    solves: s.solves,
                    warm_hits: s.warm_hits,
                    warm_fallbacks: s.warm_fallbacks,
                    cold_starts: s.cold_starts,
                    pivots: s.pivots,
                    refactorizations: s.refactorizations,
                }
            }),
        })
    }

    fn name(&self) -> &str {
        "DynamicRR"
    }

    fn set_probe(&mut self, enabled: bool) {
        self.policy.as_probe_mut().set_probe(enabled);
        self.lp_solver
            .set_record_times(enabled && self.config.use_lp);
        if !enabled {
            self.last_decision = None;
        }
    }

    fn drain_learner_events(&mut self) -> Vec<mec_sim::LearnerEvent> {
        let events = self.policy.as_probe_mut().drain_probe();
        events
            .into_iter()
            .map(|e| mec_sim::LearnerEvent {
                step: e.step,
                arm: e.arm.index(),
                value: self.domain.value(e.arm),
                kind: e.kind.as_str(),
                pulls: e.pulls,
                mean: e.mean,
                radius: e.radius,
                reward: e.reward,
                oracle: e.oracle,
            })
            .collect()
    }

    fn probe_dropped(&self) -> u64 {
        self.policy.as_probe().probe_dropped()
    }

    fn last_decision(&self) -> Option<mec_sim::DecisionRecord> {
        self.last_decision
    }

    fn drain_solve_times_ms(&mut self) -> Vec<f64> {
        self.lp_solver.drain_solve_times_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_sim::{Engine, SlotConfig};
    use mec_topology::TopologyBuilder;
    use mec_workload::{ArrivalProcess, WorkloadBuilder};

    fn run(use_lp: bool, n: usize, horizon: u64) -> (mec_sim::Metrics, DynamicRr) {
        run_probed(use_lp, n, horizon, false)
    }

    fn run_probed(
        use_lp: bool,
        n: usize,
        horizon: u64,
        probe: bool,
    ) -> (mec_sim::Metrics, DynamicRr) {
        let topo = TopologyBuilder::new(5).seed(23).build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(23)
            .count(n)
            .arrivals(ArrivalProcess::UniformOver {
                horizon: horizon / 2,
            })
            .build();
        let params = InstanceParams::default();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig {
            horizon,
            c_unit: params.c_unit,
            slot_ms: params.slot_ms,
            seed: 23,
            ..Default::default()
        };
        let mut policy = if use_lp {
            let instance = Instance::new(topo.clone(), requests.clone(), params);
            DynamicRr::with_lp(
                instance,
                DynamicRrConfig {
                    horizon_hint: horizon,
                    ..Default::default()
                },
            )
        } else {
            DynamicRr::new(DynamicRrConfig {
                horizon_hint: horizon,
                ..Default::default()
            })
        };
        if probe {
            SlotPolicy::set_probe(&mut policy, true);
        }
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        let metrics = engine.run(&mut policy).unwrap();
        (metrics, policy)
    }

    #[test]
    fn fast_mode_completes_and_learns() {
        let (metrics, policy) = run(false, 30, 400);
        assert!(metrics.completed() > 0, "{metrics}");
        assert!(metrics.total_reward() > 0.0);
        // The learner should have narrowed the arm set at least somewhat
        // or at minimum still report a threshold inside the domain.
        let th = policy.learned_threshold();
        assert!((100.0..=1000.0).contains(&th));
        assert!(policy.active_arms() >= 1);
    }

    #[test]
    fn lp_mode_runs_on_small_instance() {
        let (metrics, _) = run(true, 10, 60);
        // LP-PT per slot is slow but must behave: either completes jobs or
        // at minimum produces a clean run.
        assert!(metrics.completed() + metrics.unserved() + metrics.expired() == 10);
    }

    #[test]
    fn respects_threshold_admission_bound() {
        // With a huge C^th_min the admission count collapses toward
        // total_capacity / C^th.
        let topo = TopologyBuilder::new(3).seed(1).build();
        let requests = WorkloadBuilder::new(&topo).seed(1).count(40).build();
        let params = InstanceParams::default();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig {
            horizon: 1,
            c_unit: params.c_unit,
            slot_ms: params.slot_ms,
            seed: 1,
            ..Default::default()
        };
        let total = topo.total_capacity().as_mhz();
        let mut policy = DynamicRr::new(DynamicRrConfig {
            threshold_lo_mhz: 2000.0,
            threshold_hi_mhz: 2000.0,
            kappa: 1,
            ..Default::default()
        });
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        let _ = engine.run(&mut policy).unwrap();
        // Can't observe the internal admitted set directly; instead check
        // the implied bound: share >= 2000 means at most total/2000 jobs.
        let bound = (total / 2000.0).floor() as usize;
        assert!(bound >= 1);
    }

    #[test]
    fn telemetry_reports_learner_state() {
        let (_, policy) = run(false, 30, 400);
        let t = SlotPolicy::telemetry(&policy).expect("DynamicRR exposes telemetry");
        assert_eq!(t.policy, "DynamicRR");
        assert_eq!(t.arms.len(), DynamicRrConfig::default().kappa);
        assert!(t.total_pulls > 0);
        assert!(t.cum_reward > 0.0);
        assert!(t.regret_proxy >= 0.0);
        assert_eq!(t.active_arms(), policy.active_arms());
        assert_eq!(t.best_arm, t.arms[t.best_arm].arm);
        assert!((100.0..=1000.0).contains(&t.best_value));
        // Pull counts across arms account for every learner update.
        let pulls: u64 = t.arms.iter().map(|a| a.pulls).sum();
        assert_eq!(pulls, t.total_pulls);
        for a in &t.arms {
            assert!(a.ucb >= a.mean - 1e-12 && a.lcb <= a.mean + 1e-12);
        }
    }

    #[test]
    fn probe_streams_lifecycle_events_with_domain_values() {
        let (_, mut policy) = run_probed(false, 30, 400, true);
        let events = SlotPolicy::drain_learner_events(&mut policy);
        assert!(!events.is_empty());
        let kappa = DynamicRrConfig::default().kappa;
        let activates = events.iter().filter(|e| e.kind == "activate").count();
        assert_eq!(activates, kappa, "attach emits one activate per arm");
        let samples: Vec<_> = events.iter().filter(|e| e.kind == "sample").collect();
        assert!(!samples.is_empty(), "updates emit sample events");
        for e in &events {
            assert!(e.arm < kappa);
            // Arm ids are mapped to threshold MHz through the domain.
            assert!((100.0..=1000.0).contains(&e.value), "value {}", e.value);
        }
        for s in &samples {
            let r = s.reward.expect("samples carry the realized reward");
            assert!((0.0..=1.0).contains(&r));
            let o = s.oracle.expect("samples carry the per-step oracle");
            assert!((0.0..=1.0).contains(&o));
        }
        // Second drain is empty; drop counter is exposed.
        assert!(SlotPolicy::drain_learner_events(&mut policy).is_empty());
        let _ = SlotPolicy::probe_dropped(&policy);
    }

    #[test]
    fn probe_records_deterministic_decision_digest() {
        let (_, p1) = run_probed(false, 30, 120, true);
        let (_, p2) = run_probed(false, 30, 120, true);
        let d1 = SlotPolicy::last_decision(&p1).expect("probed run records decisions");
        let d2 = SlotPolicy::last_decision(&p2).expect("probed run records decisions");
        assert_eq!(
            d1, d2,
            "same seed must produce an identical decision record"
        );
        assert!(d1.slot < 120);
        assert!((100.0..=1000.0).contains(&d1.value));
        assert!(d1.active_arms >= 1);
        // Unprobed runs record nothing: the probe must not leak state.
        let (_, p3) = run(false, 30, 120);
        assert!(SlotPolicy::last_decision(&p3).is_none());
    }

    #[test]
    fn solver_telemetry_present_only_in_lp_mode() {
        let (_, mut policy) = run_probed(true, 10, 60, true);
        let t = SlotPolicy::telemetry(&policy).unwrap();
        let solver = t.solver.expect("LP mode reports solver telemetry");
        assert!(solver.solves > 0);
        assert_eq!(
            solver.warm_hits + solver.warm_fallbacks + solver.cold_starts,
            solver.solves
        );
        // Probed LP runs buffer wall-clock solve times (live-only data).
        let times = SlotPolicy::drain_solve_times_ms(&mut policy);
        assert_eq!(times.len() as u64, solver.solves);
        assert!(times.iter().all(|t| t.is_finite() && *t >= 0.0));

        let (_, fast) = run(false, 30, 120);
        assert!(SlotPolicy::telemetry(&fast).unwrap().solver.is_none());
    }

    #[test]
    fn deterministic() {
        let (m1, _) = run(false, 20, 200);
        let (m2, _) = run(false, 20, 200);
        assert_eq!(m1, m2);
    }
}
