//! Online `HeuKKT` [21]: per-slot KKT water-filling of each station's
//! capacity across its reward-ranked local jobs.

use crate::online::{startable_at, useful_compute, SlotCapacity};
use mec_sim::fair_share;
use mec_sim::{Allocation, SlotContext, SlotPolicy};
use mec_topology::units::total_cmp;

/// The online `HeuKKT` baseline: each slot, jobs attach to their
/// latency-optimal feasible station; every station then splits its capacity
/// across its local jobs by water-filling (the KKT condition of the relaxed
/// allocation problem), after dropping the lowest reward-density jobs that
/// would push the per-job share below a viability floor (they spill to the
/// "cloud" and retry next slot).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineHeuKkt;

impl OnlineHeuKkt {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl SlotPolicy for OnlineHeuKkt {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        let capacity = SlotCapacity::new(ctx);
        // Attach each job to its latency-best feasible station; the KKT
        // water-filling below then resolves per-station contention.
        let mut per_station: Vec<Vec<usize>> = vec![Vec::new(); ctx.topo.station_count()];
        for (i, view) in ctx.views.iter().enumerate() {
            if !view.schedulable() {
                continue;
            }
            let best = ctx
                .topo
                .station_ids()
                .filter(|&s| startable_at(view, ctx, s))
                .min_by(|&a, &b| {
                    total_cmp(
                        &ctx.paths.delay(view.job.request().home(), a),
                        &ctx.paths.delay(view.job.request().home(), b),
                    )
                });
            if let Some(s) = best {
                per_station[s.index()].push(i);
            }
        }

        let mut out = Vec::new();
        for station in ctx.topo.station_ids() {
            let mut local = per_station[station.index()].clone();
            if local.is_empty() {
                continue;
            }
            // Reward density: expected reward per MHz of estimated demand.
            let density = |i: usize| {
                let v = &ctx.views[i];
                let d = v
                    .rate_estimate()
                    .demand(ctx.config.c_unit)
                    .as_mhz()
                    .max(1e-9);
                v.job.request().demand().expected_reward() / d
            };
            local.sort_by(|&a, &b| total_cmp(&density(b), &density(a)));

            // KKT spill: shrink the served set until the equal share can
            // sustain at least half of the median demand (a viability
            // floor — below that the allocation thrashes without
            // finishing anything).
            let cap = capacity.remaining(station);
            let mut kept = local.len();
            while kept > 1 {
                let share = fair_share(cap, kept).expect("kept >= 1");
                let median_need = useful_compute(&ctx.views[local[kept / 2]], ctx);
                if share.as_mhz() + 1e-9 >= median_need.as_mhz() / 2.0 {
                    break;
                }
                kept -= 1;
            }

            let caps: Vec<_> = local[..kept]
                .iter()
                .map(|&i| useful_compute(&ctx.views[i], ctx))
                .collect();
            let grants = mec_sim::sharing::water_fill(cap, &caps);
            for (&i, grant) in local[..kept].iter().zip(grants) {
                if grant.is_positive() {
                    out.push(Allocation {
                        request: ctx.views[i].job.id(),
                        station,
                        compute: grant,
                    });
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "HeuKKT (online)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_sim::{Engine, SlotConfig};
    use mec_topology::TopologyBuilder;
    use mec_workload::{ArrivalProcess, WorkloadBuilder};

    #[test]
    fn waterfills_and_completes() {
        let topo = TopologyBuilder::new(5).seed(15).build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(15)
            .count(25)
            .arrivals(ArrivalProcess::UniformOver { horizon: 120 })
            .build();
        let params = InstanceParams::default();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig {
            horizon: 400,
            c_unit: params.c_unit,
            slot_ms: params.slot_ms,
            seed: 15,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        let metrics = engine.run(&mut OnlineHeuKkt::new()).unwrap();
        assert!(metrics.completed() > 0);
        assert!(metrics.total_reward() > 0.0);
    }
}
