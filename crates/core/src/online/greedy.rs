//! Online `Greedy` [32]: per slot, longest-execution-first, latency-optimal
//! placement.

use crate::online::{startable_at, useful_compute, SlotCapacity};
use mec_sim::{Allocation, SlotContext, SlotPolicy};
use mec_topology::units::total_cmp;

/// The online `Greedy` baseline: each slot it sorts the live jobs by
/// execution-time proxy (estimated rate × pipeline complexity, longest
/// first) and gives each its full demand on the lowest-latency feasible
/// station with room. Latency-first, reward-blind.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineGreedy;

impl OnlineGreedy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl SlotPolicy for OnlineGreedy {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        let mut order: Vec<usize> = (0..ctx.views.len()).collect();
        order.sort_by(|&a, &b| {
            let exec = |i: usize| {
                let v = &ctx.views[i];
                v.rate_estimate().as_mbps()
                    * v.job
                        .request()
                        .tasks()
                        .iter()
                        .map(|t| t.complexity())
                        .sum::<f64>()
            };
            total_cmp(&exec(b), &exec(a)) // descending
        });

        let mut capacity = SlotCapacity::new(ctx);
        let mut out = Vec::new();
        for i in order {
            let view = &ctx.views[i];
            if !view.schedulable() {
                continue;
            }
            let need = useful_compute(view, ctx);
            if !need.is_positive() {
                continue;
            }
            // Lowest-latency feasible station with *any* remaining room.
            let best = ctx
                .topo
                .station_ids()
                .filter(|&s| capacity.remaining(s).is_positive() && startable_at(view, ctx, s))
                .min_by(|&a, &b| {
                    total_cmp(
                        &ctx.paths.delay(view.job.request().home(), a),
                        &ctx.paths.delay(view.job.request().home(), b),
                    )
                });
            if let Some(s) = best {
                let grant = capacity.take(s, need);
                if grant.is_positive() {
                    out.push(Allocation {
                        request: view.job.id(),
                        station: s,
                        compute: grant,
                    });
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "Greedy (online)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_sim::{Engine, SlotConfig};
    use mec_topology::TopologyBuilder;
    use mec_workload::{ArrivalProcess, WorkloadBuilder};

    #[test]
    fn runs_clean_and_completes_jobs() {
        let topo = TopologyBuilder::new(6).seed(4).build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(4)
            .count(20)
            .arrivals(ArrivalProcess::UniformOver { horizon: 100 })
            .build();
        let params = InstanceParams::default();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig {
            horizon: 400,
            c_unit: params.c_unit,
            slot_ms: params.slot_ms,
            seed: 4,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        let metrics = engine.run(&mut OnlineGreedy::new()).unwrap();
        assert!(metrics.completed() > 0, "greedy should finish something");
        assert!(metrics.total_reward() > 0.0);
    }
}
