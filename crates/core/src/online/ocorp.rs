//! Online `OCORP` [20]: arrival/remaining ordering + best-fit packing,
//! every slot.

use crate::online::{startable_at, useful_compute, SlotCapacity};
use mec_sim::{Allocation, SlotContext, SlotPolicy};
use mec_topology::units::total_cmp;

/// The online `OCORP` baseline: each slot it sorts unfinished jobs by
/// (arrival time, remaining to-be-processed data) and best-fit packs each
/// onto the station whose residual capacity is smallest-but-sufficient,
/// falling back to the latency-optimal station with room.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineOcorp;

impl OnlineOcorp {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl SlotPolicy for OnlineOcorp {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        let slot_s = ctx.config.slot_seconds();
        let mut order: Vec<usize> = (0..ctx.views.len()).collect();
        order.sort_by(|&a, &b| {
            let va = &ctx.views[a];
            let vb = &ctx.views[b];
            va.job
                .request()
                .arrival_slot()
                .cmp(&vb.job.request().arrival_slot())
                .then_with(|| {
                    let rem = |v: &mec_sim::JobView<'_>| match v.job.max_useful_rate(slot_s) {
                        Some(r) => r.as_mbps() * slot_s, // remaining MB
                        None => {
                            v.rate_estimate().as_mbps()
                                * v.job.request().duration_slots() as f64
                                * slot_s
                        }
                    };
                    total_cmp(&rem(va), &rem(vb))
                })
        });

        let mut capacity = SlotCapacity::new(ctx);
        let mut out = Vec::new();
        for i in order {
            let view = &ctx.views[i];
            if !view.schedulable() {
                continue;
            }
            let need = useful_compute(view, ctx);
            if !need.is_positive() {
                continue;
            }
            // Best fit: smallest residual >= need; else latency-best with
            // any room (partial service).
            let fit = ctx
                .topo
                .station_ids()
                .filter(|&s| startable_at(view, ctx, s))
                .filter(|&s| capacity.remaining(s).as_mhz() + 1e-9 >= need.as_mhz())
                .min_by(|&a, &b| total_cmp(&capacity.remaining(a), &capacity.remaining(b)));
            let chosen = fit.or_else(|| {
                ctx.topo
                    .station_ids()
                    .filter(|&s| capacity.remaining(s).is_positive() && startable_at(view, ctx, s))
                    .min_by(|&a, &b| {
                        total_cmp(
                            &ctx.paths.delay(view.job.request().home(), a),
                            &ctx.paths.delay(view.job.request().home(), b),
                        )
                    })
            });
            if let Some(s) = chosen {
                let grant = capacity.take(s, need);
                if grant.is_positive() {
                    out.push(Allocation {
                        request: view.job.id(),
                        station: s,
                        compute: grant,
                    });
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "OCORP (online)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_sim::{Engine, SlotConfig};
    use mec_topology::TopologyBuilder;
    use mec_workload::{ArrivalProcess, WorkloadBuilder};

    #[test]
    fn completes_under_contention() {
        let topo = TopologyBuilder::new(5).seed(8).build();
        let requests = WorkloadBuilder::new(&topo)
            .seed(8)
            .count(30)
            .arrivals(ArrivalProcess::UniformOver { horizon: 150 })
            .build();
        let params = InstanceParams::default();
        let paths = topo.shortest_paths();
        let cfg = SlotConfig {
            horizon: 400,
            c_unit: params.c_unit,
            slot_ms: params.slot_ms,
            seed: 8,
            ..Default::default()
        };
        let mut engine = Engine::new(&topo, &paths, requests, cfg);
        let metrics = engine.run(&mut OnlineOcorp::new()).unwrap();
        assert!(metrics.completed() > 0);
    }
}
