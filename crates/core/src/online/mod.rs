//! Online (per-time-slot, preemptive) algorithms for the dynamic reward
//! maximization problem (§V), all implemented as [`mec_sim::SlotPolicy`]s:
//!
//! * [`DynamicRr`] — Algorithm 3: Lipschitz-bandit threshold + round-robin
//!   admission + `Heu`-style assignment.
//! * [`OnlineGreedy`], [`OnlineOcorp`], [`OnlineHeuKkt`] — the online
//!   versions of the §VI-A baselines.

mod dynamic_rr;
mod greedy;
mod heukkt;
mod ocorp;

pub use dynamic_rr::{DynamicRr, DynamicRrConfig, Learner};
pub use greedy::OnlineGreedy;
pub use heukkt::OnlineHeuKkt;
pub use ocorp::OnlineOcorp;

use mec_sim::{JobView, SlotContext};
use mec_topology::station::StationId;
use mec_topology::units::Compute;

/// The compute a job can usefully consume this slot: enough to sustain its
/// (estimated) rate, but never more than finishes its remaining work within
/// the slot.
pub(crate) fn useful_compute(view: &JobView<'_>, ctx: &SlotContext<'_>) -> Compute {
    let c_unit = ctx.config.c_unit;
    let rate_based = view.rate_estimate().demand(c_unit);
    match view.job.max_useful_rate(ctx.config.slot_seconds()) {
        Some(finish_rate) => rate_based.min(finish_rate.demand(c_unit)),
        None => rate_based,
    }
}

/// Whether `station` is a legal *first* service location for the job this
/// slot (Ineq. 1 — the engine enforces the same test, so policies must
/// pre-filter with it). Jobs already started are always legal.
pub(crate) fn startable_at(view: &JobView<'_>, ctx: &SlotContext<'_>, station: StationId) -> bool {
    if view.job.realized().is_some() {
        return true;
    }
    let waiting = view.job.waiting_slots(ctx.slot);
    view.job
        .request()
        .meets_deadline_at(ctx.topo, ctx.paths, station, waiting, ctx.config.slot_ms)
}

/// Remaining capacity tracker for one slot.
#[derive(Debug, Clone)]
pub(crate) struct SlotCapacity {
    remaining: Vec<Compute>,
}

impl SlotCapacity {
    pub fn new(ctx: &SlotContext<'_>) -> Self {
        Self {
            remaining: ctx.topo.stations().iter().map(|s| s.capacity()).collect(),
        }
    }

    pub fn remaining(&self, s: StationId) -> Compute {
        self.remaining[s.index()]
    }

    /// Takes up to `want` from `s`; returns the granted amount.
    pub fn take(&mut self, s: StationId, want: Compute) -> Compute {
        let grant = want.min(self.remaining[s.index()]).clamp_non_negative();
        self.remaining[s.index()] -= grant;
        grant
    }
}

#[cfg(test)]
mod send_tests {
    use super::*;

    /// The serving runtime (`mec-serve`) moves boxed online policies into
    /// per-shard worker threads, so every policy must be `Send`. Compile-
    /// time assertion — a non-`Send` field (e.g. an `Rc`) fails this test
    /// at build time.
    #[test]
    fn online_policies_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DynamicRr>();
        assert_send::<OnlineGreedy>();
        assert_send::<OnlineHeuKkt>();
        assert_send::<OnlineOcorp>();
        assert_send::<Box<dyn mec_sim::SlotPolicy + Send>>();
    }
}
