//! `Exact` — the paper's exact solution: **ILP-RM** solved by
//! branch-and-bound (practical only for small instances, as §IV-A notes).
//!
//! Variables `x_{ji} ∈ {0,1}` assign request `j`'s consolidated pipeline to
//! station `i`. The objective is the expected reward `Σ π_ρ RD_ρ` of
//! admitted requests (Eq. before (3)); Constraint (4) packs *expected*
//! demands `E(ρ_j) · C_unit` into capacities; Constraint (5) (deadlines) is
//! enforced structurally by creating variables only for feasible pairs.

use crate::model::{Instance, Realizations};
use crate::outcome::{OfflineAlgorithm, OffloadOutcome};
use mec_lp::{solve_binary, BranchBoundConfig, Cmp, LpError, Problem, Sense, VarId};
use mec_sim::Metrics;
use mec_topology::station::StationId;
use std::time::Instant;

/// The exact ILP-RM solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exact {
    /// Branch-and-bound node budget (default 200k nodes).
    pub config: Option<BranchBoundConfig>,
}

impl Exact {
    /// Creates the solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the branch-and-bound configuration.
    #[must_use]
    pub fn with_config(config: BranchBoundConfig) -> Self {
        Self {
            config: Some(config),
        }
    }

    /// Solves ILP-RM and returns `(expected objective, assignment)`.
    ///
    /// Exposed separately from [`OfflineAlgorithm::solve`] because the
    /// approximation-ratio experiment needs the *expected* optimum, not a
    /// realized run.
    ///
    /// # Errors
    ///
    /// Propagates [`LpError`] from branch-and-bound.
    pub fn solve_ilp(&self, instance: &Instance) -> Result<(f64, Vec<Option<StationId>>), LpError> {
        let n = instance.request_count();
        let mut problem = Problem::new(Sense::Maximize);
        let mut vars: Vec<(usize, StationId, VarId)> = Vec::new();
        for j in 0..n {
            for station in instance.feasible_stations(j) {
                let er = instance.requests()[j].demand().expected_reward();
                let v = problem.add_var(er);
                vars.push((j, station, v));
            }
        }
        // (3): each request to at most one station.
        for j in 0..n {
            let coeffs: Vec<(VarId, f64)> = vars
                .iter()
                .filter(|&&(jj, _, _)| jj == j)
                .map(|&(_, _, v)| (v, 1.0))
                .collect();
            if !coeffs.is_empty() {
                problem.add_constraint(coeffs, Cmp::Le, 1.0);
            }
        }
        // (4): expected demand within capacity.
        for station in instance.topo().station_ids() {
            let coeffs: Vec<(VarId, f64)> = vars
                .iter()
                .filter(|&&(_, s, _)| s == station)
                .map(|&(j, _, v)| {
                    let demand =
                        instance.demand_of(instance.requests()[j].demand().expected_rate());
                    (v, demand.as_mhz())
                })
                .collect();
            if !coeffs.is_empty() {
                problem.add_constraint(
                    coeffs,
                    Cmp::Le,
                    instance.topo().station(station).capacity().as_mhz(),
                );
            }
        }
        let binaries: Vec<VarId> = vars.iter().map(|&(_, _, v)| v).collect();
        let cfg = self.config.unwrap_or_default();
        let sol = solve_binary(&problem, &binaries, &cfg)?;
        let mut assignment = vec![None; n];
        for &(j, station, v) in &vars {
            if sol.value(v) > 0.5 {
                assignment[j] = Some(station);
            }
        }
        Ok((sol.objective(), assignment))
    }
}

impl OfflineAlgorithm for Exact {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn solve(
        &self,
        instance: &Instance,
        realized: &Realizations,
    ) -> Result<OffloadOutcome, String> {
        let started = Instant::now();
        let (_, assignment) = self
            .solve_ilp(instance)
            .map_err(|e| format!("ILP solve failed: {e}"))?;
        // Evaluate the plan on the realized world with the same semantics
        // as the other algorithms: demands reveal at admission, a demand
        // that no longer fits earns nothing.
        let mut metrics = Metrics::new();
        let mut occupied = vec![0.0f64; instance.topo().station_count()];
        for (j, a) in assignment.iter().enumerate() {
            match a {
                Some(station) => {
                    let outcome = realized.outcome(j);
                    let demand = instance.demand_of(outcome.rate).as_mhz();
                    let cap = instance.topo().station(*station).capacity().as_mhz();
                    let fits = occupied[station.index()] + demand <= cap + 1e-9;
                    occupied[station.index()] = (occupied[station.index()] + demand).min(cap);
                    let latency = instance
                        .offline_latency(j, *station)
                        .expect("assigned stations are reachable");
                    metrics.record_completion(
                        if fits { outcome.reward } else { 0.0 },
                        latency.as_ms(),
                    );
                }
                None => metrics.record_expired(),
            }
        }
        Ok(OffloadOutcome::new(metrics, assignment, started.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceParams;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn instance(n: usize, stations: usize, seed: u64) -> Instance {
        let topo = TopologyBuilder::new(stations).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn small_instance_all_admitted_when_capacity_ample() {
        // 4 requests of ~800 MHz expected demand against 3 stations of
        // 3000+ MHz: everything fits, optimum = sum of expected rewards.
        let inst = instance(4, 3, 7);
        let exact = Exact::new();
        let (obj, assignment) = exact.solve_ilp(&inst).unwrap();
        assert_eq!(assignment.iter().filter(|a| a.is_some()).count(), 4);
        let expect: f64 = inst
            .requests()
            .iter()
            .map(|r| r.demand().expected_reward())
            .sum();
        assert!((obj - expect).abs() < 1e-6);
    }

    #[test]
    fn respects_expected_capacity() {
        let inst = instance(12, 2, 3);
        let (_, assignment) = Exact::new().solve_ilp(&inst).unwrap();
        let mut load = vec![0.0; inst.topo().station_count()];
        for (j, a) in assignment.iter().enumerate() {
            if let Some(s) = a {
                load[s.index()] += inst
                    .demand_of(inst.requests()[j].demand().expected_rate())
                    .as_mhz();
            }
        }
        for (i, &l) in load.iter().enumerate() {
            assert!(
                l <= inst.topo().station(StationId(i)).capacity().as_mhz() + 1e-6,
                "station {i} overloaded"
            );
        }
    }

    #[test]
    fn offline_run_realizes() {
        let inst = instance(8, 3, 5);
        let realized = Realizations::draw(&inst, 5);
        let out = Exact::new().solve(&inst, &realized).unwrap();
        assert!(out.metrics().total_reward() >= 0.0);
        assert!(out.admitted() >= 1);
    }

    #[test]
    fn dominates_any_single_assignment_in_expectation() {
        let inst = instance(6, 2, 13);
        let (obj, _) = Exact::new().solve_ilp(&inst).unwrap();
        // Assigning only request 0 to its best station is feasible, so the
        // optimum is at least that.
        let single = inst.requests()[0].demand().expected_reward();
        assert!(obj >= single - 1e-9);
    }
}
