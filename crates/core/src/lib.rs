//! # mec-core
//!
//! The ICDCS'21 paper's algorithms, built on the workspace substrates:
//!
//! | Paper artifact | Here |
//! |---|---|
//! | ILP-RM exact solution (§IV-A) | [`exact::Exact`] |
//! | Slot-indexed LP relaxation (**LP**, **LP-PT**) | [`slotlp`] |
//! | `Appro` 1/8-approximation (Alg. 1, Thm 1) | [`appro::Appro`] |
//! | `Heu` migration heuristic (Alg. 2, Thm 2) | [`heu::Heu`] |
//! | `DynamicRR` online learner (Alg. 3, Thm 3) | [`online::DynamicRr`] |
//! | OCORP / Greedy / HeuKKT baselines (§VI-A) | [`baselines`], [`online`] |
//!
//! Offline algorithms consume an [`model::Instance`] plus pre-drawn demand
//! [`model::Realizations`] (shared across algorithms for variance-free
//! comparisons — by convention an algorithm only reads `realized[j]` *after*
//! deciding to admit `r_j`, matching the paper's information model). Online
//! algorithms implement [`mec_sim::SlotPolicy`] and run under the
//! [`mec_sim::Engine`].
//!
//! ## Example
//!
//! ```
//! use mec_core::model::{Instance, InstanceParams, Realizations};
//! use mec_core::appro::Appro;
//! use mec_core::OfflineAlgorithm;
//! use mec_topology::TopologyBuilder;
//! use mec_workload::WorkloadBuilder;
//!
//! let topo = TopologyBuilder::new(8).seed(1).build();
//! let requests = WorkloadBuilder::new(&topo).seed(1).count(30).build();
//! let instance = Instance::new(topo, requests, InstanceParams::default());
//! let realized = Realizations::draw(&instance, 7);
//! let outcome = Appro::new(7).solve(&instance, &realized).unwrap();
//! assert!(outcome.metrics().total_reward() >= 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod appro;
pub mod baselines;
pub mod exact;
pub mod heu;
pub mod hindsight;
pub mod model;
pub mod online;
pub mod outcome;
pub mod placement;
pub mod slotlp;

pub use appro::Appro;
pub use baselines::{Greedy, HeuKkt, Ocorp};
pub use exact::Exact;
pub use heu::Heu;
pub use hindsight::hindsight_bound;
pub use mec_bandit::RegretAccountant;
pub use mec_lp::SolverKind;
pub use model::{Instance, InstanceParams, Realizations};
pub use online::{DynamicRr, DynamicRrConfig, Learner, OnlineGreedy, OnlineHeuKkt, OnlineOcorp};
pub use outcome::{OfflineAlgorithm, OffloadOutcome};
pub use placement::TaskPlacement;
pub use slotlp::{SlotLpSolver, SolverStats};
