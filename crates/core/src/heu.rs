//! `Heu` — Algorithm 2: `Appro`'s rounding plus task-migration repair
//! (Theorem 2).
//!
//! `Appro` consolidates every request into a single station, so a slot
//! prefix that fills up rejects the remaining candidates (step 6 of
//! Algorithm 1). `Heu` instead *migrates one task* of the already-admitted
//! request with the **largest realized data rate** to that request's
//! nearest feasible station, freeing enough of the prefix to admit the
//! newcomer — provided the migrated request still meets its latency
//! requirement (steps 11-14 of Algorithm 2).
//!
//! A migrated task moves `demand × complexity_k / Σ complexity` of compute
//! (the pipeline stages split the stream proportionally to their compute
//! intensity); the victim's latency is re-derived from its edited
//! [`crate::placement::TaskPlacement`] via the generalized Eq. 2 over the
//! distributed pipeline (§IV-B).

use crate::appro::{
    grouped_by_slot, residual_fill, sample_tentative, AdmissionState, DEFAULT_ROUNDS,
};
use crate::model::{Instance, Realizations};
use crate::outcome::{OfflineAlgorithm, OffloadOutcome};
use crate::slotlp::{SlotLp, SlotLpSolver, Truncation};
use mec_lp::SolverKind;
use mec_topology::station::StationId;
use mec_topology::units::total_cmp;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Algorithm 2 (`Heu`).
///
/// Uses the same multi-round backfilling as [`crate::Appro`] (round 1 is
/// the verbatim paper algorithm; later rounds re-run the lottery for
/// unassigned requests over residual capacity).
#[derive(Debug, Clone, Copy)]
pub struct Heu {
    seed: u64,
    rounds: usize,
    solver: SolverKind,
}

impl Heu {
    /// Creates the algorithm with a rounding seed and default backfill.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rounds: DEFAULT_ROUNDS,
            solver: SolverKind::default(),
        }
    }

    /// Overrides the number of rounding rounds (1 = verbatim Algorithm 2).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "need at least one rounding round");
        self.rounds = rounds;
        self
    }

    /// Picks which simplex solves the LP relaxation (the dense tableau is
    /// the correctness oracle; the revised solver is the default).
    #[must_use]
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }
}

/// Per-solve memo of each station's migration targets, nearest first by
/// backhaul delay. Topology delays are fixed for a solve, but the
/// migration repair re-ranks them for every overflow; with `S` stations
/// the first lookup pays the `O(S log S)` sort and the rest are free.
#[derive(Debug, Clone, Default)]
pub(crate) struct NearestTargets {
    by_station: Vec<Option<Vec<StationId>>>,
}

impl NearestTargets {
    pub(crate) fn new(station_count: usize) -> Self {
        Self {
            by_station: vec![None; station_count],
        }
    }

    /// The other stations ordered nearest-first from `station`.
    pub(crate) fn ordered(&mut self, instance: &Instance, station: StationId) -> &[StationId] {
        self.by_station[station.index()].get_or_insert_with(|| {
            let mut targets: Vec<StationId> = instance
                .topo()
                .station_ids()
                .filter(|&s| s != station)
                .collect();
            targets.sort_by(|&a, &b| {
                total_cmp(
                    &instance.paths().delay(station, a),
                    &instance.paths().delay(station, b),
                )
            });
            targets
        })
    }
}

/// Attempts to migrate one task of the admitted request with the largest
/// realized rate away from `station`; returns `true` if capacity was freed.
///
/// The migration is materialized as a [`crate::placement::TaskPlacement`]
/// edit (the victim's heaviest task moves to the nearest feasible
/// station), and the generalized Eq.-2 latency of the edited placement is
/// checked against the deadline — steps 11-14 of Algorithm 2.
pub(crate) fn migrate_one_task(
    instance: &Instance,
    realized: &Realizations,
    state: &mut AdmissionState,
    station: StationId,
    nearest: &mut NearestTargets,
) -> bool {
    // Victim: admitted here, largest realized rate, not yet migrated
    // (one migration per request keeps Theorem 2's feasibility argument).
    let victim = state
        .assignment
        .iter()
        .enumerate()
        .filter(|&(j, a)| {
            *a == Some(station)
                && state.reward[j] > 0.0
                && state.placements[j]
                    .as_ref()
                    .is_some_and(|p| p.is_consolidated())
        })
        .max_by(|&(a, _), &(b, _)| {
            total_cmp(
                &realized.outcome(a).rate.as_mbps(),
                &realized.outcome(b).rate.as_mbps(),
            )
        })
        .map(|(j, _)| j);
    let Some(j) = victim else {
        return false;
    };

    let request = &instance.requests()[j];
    let total_complexity: f64 = request.tasks().iter().map(|t| t.complexity()).sum();
    if total_complexity <= 0.0 {
        return false;
    }
    // Move the heaviest task: it frees the most prefix capacity.
    let (k, task) = request
        .tasks()
        .iter()
        .enumerate()
        .max_by(|a, b| total_cmp(&a.1.complexity(), &b.1.complexity()))
        .expect("pipelines are non-empty");
    let demand = instance.demand_of(realized.outcome(j).rate);
    let task_demand = demand * (task.complexity() / total_complexity);

    // Candidate targets: nearest first by backhaul delay from `station`
    // (memoized per solve — the ranking never changes within one).
    let targets = nearest.ordered(instance, station).to_vec();

    let placement = state.placements[j]
        .clone()
        .expect("victim is admitted, so placed");
    for target in targets {
        let free = (instance.topo().station(target).capacity() - state.occupied[target.index()])
            .clamp_non_negative();
        if free.as_mhz() + 1e-9 < task_demand.as_mhz() {
            continue;
        }
        // Steps 12-13: the edited placement must still meet the latency
        // requirement (generalized Eq. 2 over the distributed pipeline).
        let moved = placement.with_task_moved(k, target);
        if !moved.feasible(instance, j) {
            continue;
        }
        // Commit the migration.
        state.occupied[station.index()] =
            (state.occupied[station.index()] - task_demand).clamp_non_negative();
        state.occupied[target.index()] += task_demand;
        state.placements[j] = Some(moved);
        return true;
    }
    false
}

impl OfflineAlgorithm for Heu {
    fn name(&self) -> &'static str {
        "Heu"
    }

    fn solve(
        &self,
        instance: &Instance,
        realized: &Realizations,
    ) -> Result<OffloadOutcome, String> {
        let started = Instant::now();
        let n = instance.request_count();
        let subset: Vec<usize> = (0..n).collect();
        let lp = SlotLp::build(instance, &subset, Truncation::Standard);
        let frac = SlotLpSolver::new(self.solver)
            .solve(&lp, n)
            .map_err(|e| format!("LP solve failed: {e}"))?;

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5EED_BEEF);
        let mut state = AdmissionState::new(instance);
        let mut nearest = NearestTargets::new(instance.topo().station_count());
        {
            mec_obs::prof_scope!("heu.rounding");
            for _ in 0..self.rounds {
                let eligible: Vec<bool> = state.assignment.iter().map(Option::is_none).collect();
                if eligible.iter().all(|&e| !e) {
                    break;
                }
                let tentative = sample_tentative(&frac, &eligible, &mut rng);
                if tentative.iter().all(Option::is_none) {
                    continue;
                }
                let grouped = grouped_by_slot(instance, &tentative);
                let max_l = grouped.iter().map(Vec::len).max().unwrap_or(0);
                for l in 1..=max_l {
                    for station in instance.topo().station_ids() {
                        let layout = instance.slot_layout(station);
                        if l > layout.count() {
                            continue;
                        }
                        let prefix = layout.slot_size() * l as f64;
                        for &j in &grouped[station.index()][l - 1] {
                            let fits =
                                state.occupied[station.index()].as_mhz() <= prefix.as_mhz() + 1e-9;
                            if fits {
                                state.admit(instance, realized, j, station);
                            } else if mec_obs::prof_span!(
                                "heu.migrate",
                                migrate_one_task(
                                    instance,
                                    realized,
                                    &mut state,
                                    station,
                                    &mut nearest
                                )
                            ) && state.occupied[station.index()].as_mhz()
                                <= prefix.as_mhz() + 1e-9
                            {
                                // Step 12-14: migration freed the prefix; admit.
                                state.admit(instance, realized, j, station);
                            }
                        }
                    }
                }
            }
        }
        if self.rounds > 1 {
            mec_obs::prof_span!(
                "heu.residual_fill",
                residual_fill(instance, realized, &mut state)
            );
        }
        Ok(state.into_outcome(instance, started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appro::Appro;
    use crate::model::InstanceParams;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn instance(n: usize, stations: usize, seed: u64) -> Instance {
        let topo = TopologyBuilder::new(stations).seed(seed).build();
        let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
        Instance::new(topo, requests, InstanceParams::default())
    }

    #[test]
    fn migrate_one_task_moves_demand_and_updates_placement() {
        // Two-station line, generous deadline: migration always latency-
        // feasible; the heaviest task carries 2.0/5.5 of the demand.
        let topo = mec_topology::TopologyBuilder::new(2)
            .shape(mec_topology::generator::Shape::Line)
            .capacity_range(3000.0, 3000.0)
            .proc_delay_range(1.0, 1.0)
            .trans_delay_range(2.0, 2.0)
            .build();
        let requests = mec_workload::WorkloadBuilder::new(&topo)
            .seed(1)
            .count(1)
            .tasks_range(4, 4)
            .build();
        let inst = Instance::new(topo, requests, crate::model::InstanceParams::default());
        let realized = Realizations::draw(&inst, 1);
        let mut state = AdmissionState::new(&inst);
        state.admit(&inst, &realized, 0, 0.into());
        let demand = inst.demand_of(realized.outcome(0).rate).as_mhz();
        assert!((state.occupied[0].as_mhz() - demand).abs() < 1e-9);
        assert!(state.placements[0].as_ref().unwrap().is_consolidated());

        let mut nearest = NearestTargets::new(inst.topo().station_count());
        assert!(migrate_one_task(
            &inst,
            &realized,
            &mut state,
            0.into(),
            &mut nearest
        ));

        // Reference pipeline: render has complexity 2.0 of Σ 5.5.
        let task_share = demand * (2.0 / 5.5);
        assert!((state.occupied[0].as_mhz() - (demand - task_share)).abs() < 1e-6);
        assert!((state.occupied[1].as_mhz() - task_share).abs() < 1e-6);
        let placement = state.placements[0].as_ref().unwrap();
        assert!(!placement.is_consolidated());
        assert_eq!(placement.station_of(0), StationId(1)); // render moved
                                                           // A second migration of the same request is refused (one per
                                                           // request keeps Theorem 2's argument).
        assert!(!migrate_one_task(
            &inst,
            &realized,
            &mut state,
            0.into(),
            &mut nearest
        ));
    }

    #[test]
    fn feasible_latencies() {
        let inst = instance(40, 5, 21);
        let realized = Realizations::draw(&inst, 21);
        let out = Heu::new(21).solve(&inst, &realized).unwrap();
        // Every recorded latency respects the 200 ms requirement
        // (migration must preserve Constraint 11 — Theorem 2).
        for &lat in out.metrics().latencies_ms() {
            assert!(lat <= 200.0 + 1e-6, "latency {lat} violates deadline");
        }
    }

    #[test]
    fn heu_admits_at_least_as_many_in_aggregate() {
        // Over several seeds, Heu (which repairs overflows) should admit at
        // least as many requests as Appro on average.
        let mut appro_total = 0usize;
        let mut heu_total = 0usize;
        for seed in 0..6 {
            let inst = instance(60, 4, seed);
            let realized = Realizations::draw(&inst, seed);
            appro_total += Appro::new(seed).solve(&inst, &realized).unwrap().admitted();
            heu_total += Heu::new(seed).solve(&inst, &realized).unwrap().admitted();
        }
        assert!(
            heu_total + 3 >= appro_total,
            "heu admitted {heu_total} vs appro {appro_total}"
        );
    }

    #[test]
    fn deterministic() {
        let inst = instance(30, 4, 5);
        let realized = Realizations::draw(&inst, 5);
        let a = Heu::new(3).solve(&inst, &realized).unwrap();
        let b = Heu::new(3).solve(&inst, &realized).unwrap();
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!(a.metrics().total_reward(), b.metrics().total_reward());
    }

    #[test]
    fn empty_instance() {
        let inst = instance(0, 3, 1);
        let realized = Realizations::draw(&inst, 1);
        let out = Heu::new(0).solve(&inst, &realized).unwrap();
        assert_eq!(out.admitted(), 0);
    }
}
