//! `SolverKind` equivalence: the sparse revised simplex — cold or
//! warm-started across slots — must be indistinguishable from the dense
//! tableau oracle when it drives `DynamicRR`'s LP-PT mode. Same seed, same
//! 200-slot run, same admitted requests, same `Metrics`.

use mec_core::model::{Instance, InstanceParams};
use mec_core::{DynamicRr, DynamicRrConfig, SolverKind};
use mec_sim::{Engine, Metrics, SlotConfig};
use mec_topology::TopologyBuilder;
use mec_workload::{ArrivalProcess, WorkloadBuilder};

const HORIZON: u64 = 200;

fn run(solver: SolverKind, warm_start: bool) -> Metrics {
    let topo = TopologyBuilder::new(5).seed(42).build();
    let requests = WorkloadBuilder::new(&topo)
        .seed(42)
        .count(40)
        .arrivals(ArrivalProcess::UniformOver {
            horizon: HORIZON / 2,
        })
        .build();
    let params = InstanceParams::default();
    let paths = topo.shortest_paths();
    let cfg = SlotConfig {
        horizon: HORIZON,
        c_unit: params.c_unit,
        slot_ms: params.slot_ms,
        seed: 42,
        ..Default::default()
    };
    let instance = Instance::new(topo.clone(), requests.clone(), params);
    let mut policy = DynamicRr::with_lp(
        instance,
        DynamicRrConfig {
            horizon_hint: HORIZON,
            solver,
            warm_start,
            ..Default::default()
        },
    );
    let mut engine = Engine::new(&topo, &paths, requests, cfg);
    engine.run(&mut policy).expect("run completes")
}

#[test]
fn revised_warm_matches_dense_over_200_slots() {
    let dense = run(SolverKind::Dense, false);
    let warm = run(SolverKind::Revised, true);
    assert_eq!(dense, warm, "warm revised diverged from the dense oracle");
}

#[test]
fn warm_matches_cold_over_200_slots() {
    let cold = run(SolverKind::Revised, false);
    let warm = run(SolverKind::Revised, true);
    assert_eq!(cold, warm, "warm-starting changed the run");
}
