//! Property-based tests of the paper's algorithms on random instances.

use mec_core::model::{Instance, InstanceParams, Realizations};
use mec_core::slotlp::{SlotLp, Truncation};
use mec_core::{Appro, Greedy, Heu, HeuKkt, Ocorp, OfflineAlgorithm};
use mec_topology::TopologyBuilder;
use mec_workload::WorkloadBuilder;
use proptest::prelude::*;

fn world(seed: u64, n: usize, stations: usize) -> (Instance, Realizations) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
    let instance = Instance::new(topo, requests, InstanceParams::default());
    let realized = Realizations::draw(&instance, seed);
    (instance, realized)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every algorithm, on any instance: assignments are deadline-feasible,
    /// rewards bounded by the realized total, accounting conserves
    /// requests.
    #[test]
    fn universal_offline_invariants(
        seed in 0u64..1000,
        n in 0usize..35,
        stations in 1usize..7,
    ) {
        let (instance, realized) = world(seed, n, stations);
        let algos: Vec<Box<dyn OfflineAlgorithm>> = vec![
            Box::new(Appro::new(seed)),
            Box::new(Heu::new(seed)),
            Box::new(HeuKkt::new()),
            Box::new(Ocorp::new()),
            Box::new(Greedy::new()),
        ];
        let realized_total: f64 = (0..n).map(|j| realized.outcome(j).reward).sum();
        for algo in algos {
            let out = algo.solve(&instance, &realized).expect("solve succeeds");
            prop_assert!(out.metrics().total_reward() <= realized_total + 1e-9);
            prop_assert_eq!(
                out.metrics().completed() + out.metrics().expired(),
                n,
                "{} lost requests", algo.name()
            );
            for (j, a) in out.assignment().iter().enumerate() {
                if let Some(s) = a {
                    prop_assert!(instance.offline_feasible(j, *s),
                        "{}: request {j} infeasible at {s}", algo.name());
                }
            }
            for &lat in out.metrics().latencies_ms() {
                prop_assert!(lat <= 200.0 + 1e-6, "{}: latency {lat}", algo.name());
            }
        }
    }

    /// The slot LP always solves, its masses respect Constraint (9), and
    /// its objective never exceeds the sum of best-slot expected rewards.
    #[test]
    fn slot_lp_invariants(seed in 0u64..500, n in 1usize..25, stations in 1usize..6) {
        let (instance, _) = world(seed, n, stations);
        let subset: Vec<usize> = (0..n).collect();
        for trunc in [Truncation::Standard, Truncation::PerRequestShare { active: n }] {
            let lp = SlotLp::build(&instance, &subset, trunc);
            let frac = lp.solve(n).expect("slot LP feasible");
            let mut upper = 0.0;
            for j in 0..n {
                prop_assert!(frac.mass(j) <= 1.0 + 1e-6);
                let best = instance
                    .topo()
                    .station_ids()
                    .map(|s| instance.expected_reward_at(j, s, 1))
                    .fold(0.0f64, f64::max);
                upper += best;
            }
            prop_assert!(frac.objective() <= upper + 1e-6,
                "objective {} above per-request best sum {}", frac.objective(), upper);
        }
    }

    /// Determinism: same seeds → identical outcomes for the randomized
    /// algorithms.
    #[test]
    fn randomized_algorithms_deterministic(seed in 0u64..300) {
        let (instance, realized) = world(seed, 20, 4);
        let a1 = Appro::new(seed).solve(&instance, &realized).unwrap();
        let a2 = Appro::new(seed).solve(&instance, &realized).unwrap();
        prop_assert_eq!(a1.assignment(), a2.assignment());
        let h1 = Heu::new(seed).solve(&instance, &realized).unwrap();
        let h2 = Heu::new(seed).solve(&instance, &realized).unwrap();
        prop_assert_eq!(h1.assignment(), h2.assignment());
    }

    /// Station occupancy audit for `Appro`: the total realized demand the
    /// algorithm admits at one station never exceeds its capacity by more
    /// than one straddling request (Lemma 1's slack).
    #[test]
    fn appro_occupancy_audit(seed in 0u64..300, n in 1usize..30) {
        let (instance, realized) = world(seed, n, 4);
        let out = Appro::new(seed).solve(&instance, &realized).unwrap();
        let mut used = vec![0.0f64; instance.topo().station_count()];
        let mut max_demand = vec![0.0f64; instance.topo().station_count()];
        for (j, a) in out.assignment().iter().enumerate() {
            if let Some(s) = a {
                let d = instance.demand_of(realized.outcome(j).rate).as_mhz();
                used[s.index()] += d;
                max_demand[s.index()] = max_demand[s.index()].max(d);
            }
        }
        for (i, &u) in used.iter().enumerate() {
            let cap = instance
                .topo()
                .station(mec_topology::StationId(i))
                .capacity()
                .as_mhz();
            prop_assert!(u <= cap + max_demand[i] + 1e-6,
                "station {i}: {u} used vs cap {cap} (+1 request slack)");
        }
    }
}
