//! Acceptance tests for the `prof` feature: a profiled same-seed run
//! must account for the engine's wall time (per-slot phase self-times
//! sum to within 5% of the measured `Engine::step` wall time), expose
//! the LP pipeline phases with pivot counts, produce loadable folded
//! output, and leave the simulation results untouched.
//!
//! Gated by `required-features = ["prof"]` — run with
//! `cargo test -p mec-core --features prof --test prof`.

use mec_core::{DynamicRr, DynamicRrConfig, Instance, InstanceParams};
use mec_obs::prof;
use mec_obs::ProfileReport;
use mec_sim::{Engine, SlotConfig};
use mec_topology::TopologyBuilder;
use mec_workload::{ArrivalProcess, WorkloadBuilder};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Profiler state is process-global; serialize the tests that use it.
static LOCK: Mutex<()> = Mutex::new(());

const HORIZON: u64 = 120;

fn build(seed: u64) -> (Engine<'static>, DynamicRr) {
    // The engine borrows topology and paths; leak them so the helper
    // can return it (test-scoped and bounded).
    let topo = Box::leak(Box::new(TopologyBuilder::new(5).seed(seed).build()));
    let requests = WorkloadBuilder::new(topo)
        .seed(seed)
        .count(40)
        .arrivals(ArrivalProcess::UniformOver {
            horizon: HORIZON / 2,
        })
        .build();
    let params = InstanceParams::default();
    let paths = Box::leak(Box::new(topo.shortest_paths()));
    let cfg = SlotConfig {
        horizon: HORIZON,
        c_unit: params.c_unit,
        slot_ms: params.slot_ms,
        seed,
        ..Default::default()
    };
    let instance = Instance::new(topo.clone(), requests.clone(), params);
    let policy = DynamicRr::with_lp(
        instance,
        DynamicRrConfig {
            horizon_hint: HORIZON,
            ..Default::default()
        },
    );
    (Engine::new(topo, paths, requests, cfg), policy)
}

/// One profiled run: the report, the measured stepping wall time in
/// nanoseconds, and the completion count.
fn profiled_run() -> (ProfileReport, u64, usize) {
    prof::reset();
    prof::set_enabled(true);
    let (mut engine, mut policy) = build(23);
    let started = Instant::now();
    for _ in 0..HORIZON {
        engine.step(&mut policy).expect("legal schedule");
    }
    let wall_ns = started.elapsed().as_nanos() as u64;
    prof::set_enabled(false);
    let metrics = engine.finish();
    (prof::take_report(), wall_ns, metrics.completed())
}

#[test]
fn phase_self_times_account_for_step_wall_time() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let (report, wall_ns, _) = profiled_run();
    assert!(!report.is_empty(), "profiled run must record phases");

    let step = report
        .phases
        .iter()
        .find(|p| p.name == "engine.step")
        .expect("engine.step phase");
    assert_eq!(step.calls, HORIZON);

    // Per-slot self times across all phases must sum to within 5% of
    // the measured stepping wall time (the acceptance criterion): self
    // times partition the span tree, and every span ran under a slot.
    let slots = report.slot_self_totals();
    assert_eq!(slots.len(), HORIZON as usize, "every slot attributed");
    let slot_sum: u64 = slots.values().sum();
    let ratio = slot_sum as f64 / wall_ns as f64;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "per-slot self sum {slot_sum}ns vs wall {wall_ns}ns (ratio {ratio:.4})"
    );

    // The subtree accounting agrees with the root's cumulative time.
    let subtree = report.subtree_self_ns("engine.step");
    assert!(
        subtree.abs_diff(step.total_ns) <= step.total_ns / 20,
        "subtree self {subtree} vs step total {}",
        step.total_ns
    );
}

#[test]
fn lp_pipeline_phases_and_pivot_counts_show_up() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let (report, _, _) = profiled_run();
    for phase in [
        "engine.schedule",
        "dynrr.select",
        "dynrr.admit",
        "slotlp.solve",
    ] {
        assert!(
            report.phases.iter().any(|p| p.name == phase),
            "missing phase {phase}"
        );
    }
    let solve = report
        .phases
        .iter()
        .find(|p| p.name == "slotlp.solve")
        .unwrap();
    let pivots = solve.counts.get("simplex_pivots").copied().unwrap_or(0);
    assert!(pivots > 0, "LP solves must report simplex pivots");
}

#[test]
fn folded_output_is_well_formed_stacks() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let (report, _, _) = profiled_run();
    let folded = report.render_folded();
    assert!(!folded.is_empty());
    let mut saw_nested = false;
    for line in folded.lines() {
        let (stack, weight) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad folded line {line:?}"));
        assert!(weight.parse::<u64>().is_ok(), "non-integer weight: {line}");
        assert!(!stack.is_empty());
        if stack.starts_with("engine.step;engine.schedule;") {
            saw_nested = true;
        }
    }
    assert!(saw_nested, "expected nested scheduler stacks:\n{folded}");
}

#[test]
fn profiling_does_not_change_simulation_results() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let (_, _, profiled_completed) = profiled_run();
    prof::reset();
    let (mut engine, mut policy) = build(23);
    for _ in 0..HORIZON {
        engine.step(&mut policy).expect("legal schedule");
    }
    let unprofiled = engine.finish();
    assert_eq!(profiled_completed, unprofiled.completed());
}
