//! Serve-level acceptance tests for the `prof` feature: a profiled run
//! must surface both driver phases (dispatch, barrier) and worker
//! phases (shard tick, engine step) after the shard threads join, and
//! profiling must not perturb the deterministic snapshot stream.
//!
//! Gated by `required-features = ["prof"]` — run with
//! `cargo test -p mec-serve --features prof --test prof`.

use mec_obs::prof;
use mec_serve::{serve, LoadGen, ServeConfig};
use mec_sim::SlotConfig;
use mec_topology::TopologyBuilder;
use mec_workload::WorkloadBuilder;
use std::sync::{Mutex, PoisonError};

/// Profiler state is process-global; serialize the tests that use it.
static LOCK: Mutex<()> = Mutex::new(());

fn run_once() -> (String, Vec<String>) {
    let topo = TopologyBuilder::new(12).seed(41).build();
    let population = WorkloadBuilder::new(&topo).seed(41).count(600).build();
    let load = LoadGen::poisson(population, 2_000.0, 50.0, 41);
    let cfg = ServeConfig {
        shards: 3,
        queue_capacity: 64,
        snapshot_every: 50,
        sim: SlotConfig {
            seed: 41,
            ..SlotConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut periodic = Vec::new();
    let outcome = serve(&topo, load, &cfg, |snap| {
        // Strip the wall-clock throughput field; everything else must
        // be identical between profiled and unprofiled runs.
        let mut s = snap.clone();
        s.slots_per_sec = None;
        periodic.push(s.to_json());
    })
    .expect("serve run");
    let mut fin = outcome.final_snapshot.clone();
    fin.slots_per_sec = None;
    (fin.to_json(), periodic)
}

#[test]
fn profiled_serve_reports_driver_and_worker_phases() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    prof::reset();
    prof::set_enabled(true);
    let _ = run_once();
    prof::set_enabled(false);
    let report = prof::take_report();
    assert!(!report.is_empty(), "profiled serve must record phases");
    // Worker threads joined before serve() returned, so their
    // thread-local trees must already be merged into the report.
    for phase in [
        "serve.dispatch",
        "serve.barrier",
        "serve.shard_tick",
        "engine.step",
    ] {
        assert!(
            report.phases.iter().any(|p| p.name == phase),
            "missing phase {phase}; got {:?}",
            report.phases.iter().map(|p| &p.name).collect::<Vec<_>>()
        );
    }
    let tick = report
        .phases
        .iter()
        .find(|p| p.name == "serve.shard_tick")
        .unwrap();
    assert!(tick.calls > 0);
    // engine.step nests under the shard tick in the folded stacks.
    let folded = report.render_folded();
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("serve.shard_tick;engine.step")),
        "expected worker stacks nesting engine.step under serve.shard_tick:\n{folded}"
    );
}

#[test]
fn profiling_does_not_change_snapshots() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    prof::reset();
    prof::set_enabled(true);
    let (final_profiled, periodic_profiled) = run_once();
    prof::set_enabled(false);
    prof::reset();
    let (final_plain, periodic_plain) = run_once();
    assert_eq!(final_profiled, final_plain);
    assert_eq!(periodic_profiled, periodic_plain);
    assert!(!periodic_plain.is_empty(), "expected periodic snapshots");
}
