//! Request-lifecycle tracing integration tests (compiled only with the
//! `lifecycle` feature): id continuity across crash+restart and drain
//! handoffs, stream determinism, and the no-perturbation guarantee —
//! attaching (or detaching) lifecycle tracing never changes a run's
//! deterministic snapshot.

use mec_serve::{serve, ChaosSpec, LoadGen, ObsHub, ServeConfig};
use mec_sim::SlotConfig;
use mec_topology::{Topology, TopologyBuilder};
use mec_workload::{Request, WorkloadBuilder};
use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

fn world(stations: usize, requests: usize, seed: u64) -> (Topology, Vec<Request>) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let population = WorkloadBuilder::new(&topo)
        .seed(seed)
        .count(requests)
        .build();
    (topo, population)
}

// Stateless policy (Greedy) so checkpoint replay is exact — the
// duplicate-free lifecycle guarantee inherits the recovery contract:
// genesis replay is exact for every policy, checkpoint replay only for
// stateless ones (a stateful policy restarts with fresh internal state
// and may schedule the replayed tail differently).
fn base_cfg(seed: u64, chaos: &str) -> ServeConfig {
    ServeConfig {
        shards: 4,
        queue_capacity: 4_096,
        snapshot_every: 0,
        policy: "Greedy".to_string(),
        sim: SlotConfig {
            seed,
            ..SlotConfig::default()
        },
        chaos: ChaosSpec::parse(chaos).unwrap(),
        ..ServeConfig::default()
    }
}

/// A `Write` sink the test can read back after the hub is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One run with lifecycle tracing attached; returns (lifecycle JSONL,
/// final snapshot).
fn lifecycle_run(seed: u64, chaos: &str, checkpoint_every: u64) -> (String, mec_serve::Snapshot) {
    let (topo, population) = world(20, 2_500, seed);
    let load = LoadGen::poisson(population, 1_500.0, 50.0, seed);
    let buf = SharedBuf::default();
    let hub = Arc::new(
        ObsHub::new().with_lifecycle(mec_obs::LifecycleWriter::new(Box::new(buf.clone()))),
    );
    let mut cfg = ServeConfig {
        obs: Some(hub),
        ..base_cfg(seed, chaos)
    };
    cfg.faults.checkpoint_every = checkpoint_every;
    let snap = serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot;
    (buf.contents(), snap)
}

/// Pulls `"key":value` out of one JSON line (values here are bare
/// integers or quoted ASCII identifiers).
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag).unwrap() + tag.len()..];
    rest.split([',', '}']).next().unwrap()
}

#[test]
fn same_seed_crash_runs_yield_identical_lifecycle_streams() {
    let chaos = "crash:shard=1@slot=10,recover@slot=22";
    let (stream_a, snap_a) = lifecycle_run(77, chaos, 4);
    let (stream_b, snap_b) = lifecycle_run(77, chaos, 4);
    assert!(!stream_a.is_empty());
    assert_eq!(
        stream_a, stream_b,
        "same-seed chaos runs must emit byte-identical lifecycle streams"
    );
    assert_eq!(snap_a.to_json(), snap_b.to_json());
    for stage in [
        "\"stage\":\"admit\"",
        "\"stage\":\"start\"",
        "\"stage\":\"complete\"",
    ] {
        assert!(stream_a.contains(stage), "stream lacks {stage}");
    }
}

#[test]
fn crash_replay_never_duplicates_terminal_records() {
    // Checkpointed crash+restart: the replacement worker replays from the
    // checkpoint, so without `life_from` suppression every record from
    // the checkpoint slot to the crash slot would appear twice.
    let (stream, snap) = lifecycle_run(77, "crash:shard=1@slot=10,recover@slot=22", 4);
    assert!(snap.faults.restarts >= 1, "{:?}", snap.faults);
    let mut admits: HashMap<u64, u32> = HashMap::new();
    let mut terminal: HashMap<u64, u32> = HashMap::new();
    for line in stream.lines() {
        let id: u64 = field(line, "id").parse().unwrap();
        match field(line, "stage") {
            "\"admit\"" | "\"spill\"" | "\"buffer\"" => *admits.entry(id).or_default() += 1,
            "\"complete\"" | "\"expire\"" | "\"abort\"" => *terminal.entry(id).or_default() += 1,
            _ => {}
        }
    }
    assert!(!terminal.is_empty());
    let trail = |id: u64| -> String {
        stream
            .lines()
            .filter(|l| field(l, "id") == id.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    for (id, n) in &admits {
        assert_eq!(*n, 1, "request {id} admitted {n} times:\n{}", trail(*id));
    }
    for (id, n) in &terminal {
        assert_eq!(
            *n,
            1,
            "request {id} reached a terminal stage {n} times:\n{}",
            trail(*id)
        );
        assert!(admits.contains_key(id), "request {id} finished unadmitted");
    }
}

#[test]
fn drain_handoff_preserves_global_ids() {
    // Drain a busy station: its in-flight jobs move to the takeover shard
    // mid-run. Every handed-off id must stay attributable — admitted
    // before the move, and (when it finishes in time) exactly one
    // terminal record after it, from the shard it moved to.
    let (stream, snap) = lifecycle_run(31, "drain:station=2@slot=10@window=2", 0);
    assert!(snap.placement.handoffs >= 1, "{:?}", snap.placement);
    let mut handed: Vec<u64> = Vec::new();
    let mut admitted: Vec<u64> = Vec::new();
    let mut terminal: HashMap<u64, u32> = HashMap::new();
    for line in stream.lines() {
        let id: u64 = field(line, "id").parse().unwrap();
        match field(line, "stage") {
            "\"handoff\"" => handed.push(id),
            "\"admit\"" | "\"spill\"" | "\"buffer\"" => admitted.push(id),
            "\"complete\"" | "\"expire\"" | "\"abort\"" => *terminal.entry(id).or_default() += 1,
            _ => {}
        }
    }
    assert!(
        !handed.is_empty(),
        "the drained station moved no jobs; pick a busier slot"
    );
    for id in &handed {
        assert!(
            admitted.contains(id),
            "handed-off id {id} was never admitted"
        );
        assert!(
            terminal.get(id).is_none_or(|n| *n == 1),
            "handed-off id {id} finished {:?} times",
            terminal.get(id)
        );
    }
    for (id, n) in &terminal {
        assert_eq!(*n, 1, "request {id} reached a terminal stage {n} times");
    }
}

#[test]
fn lifecycle_attachment_never_perturbs_the_run() {
    let chaos = "crash:shard=1@slot=10,recover@slot=22";
    let plain = {
        let (topo, population) = world(20, 2_500, 77);
        let load = LoadGen::poisson(population, 1_500.0, 50.0, 77);
        let mut cfg = base_cfg(77, chaos);
        cfg.faults.checkpoint_every = 4;
        serve(&topo, load, &cfg, |_| {})
            .unwrap()
            .final_snapshot
            .to_json()
    };
    let (stream, traced) = lifecycle_run(77, chaos, 4);
    assert!(!stream.is_empty());
    assert_eq!(
        plain,
        traced.to_json(),
        "attaching lifecycle tracing must not change the deterministic snapshot"
    );
}
