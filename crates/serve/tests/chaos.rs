//! Fault-injection tests of the supervised serving runtime: scripted
//! crashes and stalls, deterministic recovery via journal replay,
//! degraded-mode routing, and conservation of requests through outages.

use mec_serve::{
    serve, ChaosSpec, DegradedPolicy, FaultConfig, FaultStats, LoadGen, ServeConfig, ServeError,
    Snapshot,
};
use mec_sim::SlotConfig;
use mec_topology::{Topology, TopologyBuilder};
use mec_workload::{Request, WorkloadBuilder};

fn world(stations: usize, requests: usize, seed: u64) -> (Topology, Vec<Request>) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let population = WorkloadBuilder::new(&topo)
        .seed(seed)
        .count(requests)
        .build();
    (topo, population)
}

/// A config with ample queue capacity (no admission shedding, so backlog
/// trajectories during an outage cannot change admission decisions).
fn ample_cfg(policy: &str, seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 4,
        queue_capacity: 4_096,
        snapshot_every: 0,
        policy: policy.to_string(),
        sim: SlotConfig {
            seed,
            ..SlotConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// Final snapshot with the fault counters zeroed, for comparing a chaos
/// run against its fault-free twin (everything else must match exactly).
fn defaulted_faults(snapshot: &Snapshot) -> Snapshot {
    Snapshot {
        faults: FaultStats::default(),
        ..snapshot.clone()
    }
}

fn assert_conserved(snap: &Snapshot, total: u64) {
    assert_eq!(snap.admitted + snap.shed, total);
    assert_eq!(
        (snap.completed + snap.expired + snap.aborted + snap.unserved) as u64,
        snap.admitted
    );
}

#[test]
fn crash_then_recover_matches_fault_free_run() {
    // The satellite acceptance test: with genesis replay (the default),
    // a crash-then-recover run of the *learning* policy ends in exactly
    // the state of the uninterrupted run, because recovery replays the
    // full journal and reconstructs both engine and bandit state.
    let run = |chaos: &str| {
        let (topo, population) = world(20, 2_500, 77);
        let load = LoadGen::poisson(population, 1_500.0, 50.0, 77);
        let cfg = ServeConfig {
            chaos: ChaosSpec::parse(chaos).unwrap(),
            ..ample_cfg("DynamicRR", 77)
        };
        serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot
    };
    let clean = run("");
    let chaotic = run("crash:shard=1@slot=10,recover@slot=22");
    assert!(chaotic.faults.restarts >= 1, "{:?}", chaotic.faults);
    assert!(chaotic.faults.replayed_arrivals > 0, "{:?}", chaotic.faults);
    assert_eq!(chaotic.faults.recovery_latency_slots, 12);
    assert_eq!(chaotic.faults.degraded_slots, 12);
    assert!(clean.faults.is_quiet(), "{:?}", clean.faults);
    assert_eq!(
        defaulted_faults(&chaotic).to_json(),
        defaulted_faults(&clean).to_json(),
        "recovered run must be byte-identical to the fault-free run"
    );
}

#[test]
fn chaos_runs_repeat_byte_identically() {
    // Repeating the identical chaos command reproduces the identical
    // final snapshot — fault counters included.
    let run = || {
        let (topo, population) = world(16, 1_200, 42);
        let load = LoadGen::poisson(population, 1_200.0, 50.0, 42);
        let cfg = ServeConfig {
            snapshot_every: 25,
            chaos: ChaosSpec::parse("crash:shard=2@slot=8,recover@slot=15").unwrap(),
            ..ample_cfg("DynamicRR", 42)
        };
        let mut periodic = Vec::new();
        let outcome = serve(&topo, load, &cfg, |snap| {
            let mut s = snap.clone();
            s.slots_per_sec = None;
            periodic.push(s.to_json());
        })
        .unwrap();
        (periodic, outcome.final_snapshot.to_json())
    };
    let (periodic_a, final_a) = run();
    let (periodic_b, final_b) = run();
    assert_eq!(periodic_a, periodic_b);
    assert_eq!(final_a, final_b);
    assert!(final_a.contains("\"restarts\":1"), "{final_a}");
}

#[test]
fn stall_is_detected_by_the_reply_deadline_and_recovered() {
    let (topo, population) = world(12, 600, 9);
    let total = population.len() as u64;
    let load = LoadGen::poisson(population, 1_000.0, 50.0, 9);
    let cfg = ServeConfig {
        faults: FaultConfig {
            tick_timeout_ms: 200,
            ..FaultConfig::default()
        },
        chaos: ChaosSpec::parse("stall:shard=0@slot=5").unwrap(),
        ..ample_cfg("Greedy", 9)
    };
    let snap = serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot;
    assert!(snap.faults.restarts >= 1, "{:?}", snap.faults);
    assert!(snap.faults.degraded_slots >= 1, "{:?}", snap.faults);
    assert_conserved(&snap, total);
}

#[test]
fn checkpointed_recovery_is_exact_for_stateless_policies() {
    // With periodic checkpoints the journal is pruned and catch-up starts
    // from the last checkpoint instead of genesis. For a stateless policy
    // this is still exact.
    let run = |chaos: &str| {
        let (topo, population) = world(18, 2_000, 33);
        let load = LoadGen::poisson(population, 1_500.0, 50.0, 33);
        let cfg = ServeConfig {
            faults: FaultConfig {
                checkpoint_every: 8,
                ..FaultConfig::default()
            },
            chaos: ChaosSpec::parse(chaos).unwrap(),
            ..ample_cfg("Greedy", 33)
        };
        serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot
    };
    let clean = run("");
    let chaotic = run("crash:shard=1@slot=20,recover@slot=26");
    assert!(chaotic.faults.restarts >= 1, "{:?}", chaotic.faults);
    assert!(chaotic.faults.checkpoints > 0, "{:?}", chaotic.faults);
    assert_eq!(
        defaulted_faults(&chaotic).to_json(),
        defaulted_faults(&clean).to_json()
    );
}

#[test]
fn shed_policy_drops_arrivals_while_down_but_conserves_accounting() {
    let (topo, population) = world(8, 2_000, 5);
    let total = population.len() as u64;
    // High rate so arrivals land inside the outage window.
    let load = LoadGen::poisson(population, 4_000.0, 50.0, 5);
    let cfg = ServeConfig {
        shards: 2,
        faults: FaultConfig {
            degraded: DegradedPolicy::Shed,
            ..FaultConfig::default()
        },
        chaos: ChaosSpec::parse("crash:shard=0@slot=2,recover@slot=9").unwrap(),
        ..ample_cfg("Greedy", 5)
    };
    let snap = serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot;
    assert!(snap.faults.shed_while_down > 0, "{:?}", snap.faults);
    assert_eq!(snap.faults.spilled, 0);
    assert!(snap.shed >= snap.faults.shed_while_down);
    assert_conserved(&snap, total);
}

#[test]
fn spill_policy_reroutes_to_neighbor_shards() {
    let (topo, population) = world(8, 2_000, 5);
    let total = population.len() as u64;
    let load = LoadGen::poisson(population, 4_000.0, 50.0, 5);
    let cfg = ServeConfig {
        shards: 2,
        faults: FaultConfig {
            degraded: DegradedPolicy::Spill,
            ..FaultConfig::default()
        },
        chaos: ChaosSpec::parse("crash:shard=0@slot=2,recover@slot=9").unwrap(),
        ..ample_cfg("Greedy", 5)
    };
    let snap = serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot;
    assert!(snap.faults.spilled > 0, "{:?}", snap.faults);
    assert_conserved(&snap, total);
}

#[test]
fn supervisor_gives_up_after_max_restarts_but_final_accounting_conserves() {
    let (topo, population) = world(8, 800, 13);
    let total = population.len() as u64;
    let load = LoadGen::poisson(population, 2_000.0, 50.0, 13);
    let cfg = ServeConfig {
        shards: 2,
        faults: FaultConfig {
            // No supervised restarts at all: the shard stays down from
            // the crash until final accounting revives it.
            max_restarts: 0,
            ..FaultConfig::default()
        },
        chaos: ChaosSpec::parse("crash:shard=1@slot=3").unwrap(),
        ..ample_cfg("Greedy", 13)
    };
    let snap = serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot;
    // Exactly one revival: the accounting restart at finish.
    assert_eq!(snap.faults.restarts, 1, "{:?}", snap.faults);
    assert!(snap.faults.degraded_slots > 0, "{:?}", snap.faults);
    assert!(snap.faults.replayed_arrivals > 0, "{:?}", snap.faults);
    assert_conserved(&snap, total);
}

#[test]
fn chaos_spec_naming_a_missing_shard_is_rejected() {
    let (topo, population) = world(8, 10, 1);
    let load = LoadGen::replay(population);
    let cfg = ServeConfig {
        shards: 2,
        chaos: ChaosSpec::parse("crash:shard=7@slot=1").unwrap(),
        ..ample_cfg("Greedy", 1)
    };
    match serve(&topo, load, &cfg, |_| {}) {
        Err(ServeError::Chaos(msg)) => {
            assert!(msg.contains("shard 7"), "{msg}");
        }
        other => panic!("expected a chaos validation error, got {other:?}"),
    }
}

#[test]
fn slow_fault_under_the_deadline_changes_nothing() {
    let run = |chaos: &str| {
        let (topo, population) = world(10, 400, 21);
        let load = LoadGen::poisson(population, 1_000.0, 50.0, 21);
        let cfg = ServeConfig {
            chaos: ChaosSpec::parse(chaos).unwrap(),
            ..ample_cfg("Greedy", 21)
        };
        serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot
    };
    let clean = run("");
    let slowed = run("slow:shard=0@slot=4@ms=20");
    // A slow tick under the deadline is absorbed: no restart, identical
    // snapshot (the delay is wall-clock only).
    assert!(slowed.faults.is_quiet(), "{:?}", slowed.faults);
    assert_eq!(slowed.to_json(), clean.to_json());
}
