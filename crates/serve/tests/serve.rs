//! End-to-end tests of the sharded serving runtime: partition
//! invariants, load shedding under a full queue, conservation of
//! requests, and byte-identical determinism across runs.

use mec_serve::{partition, serve, ClockMode, LoadGen, Router, ServeConfig};
use mec_sim::SlotConfig;
use mec_topology::Topology;
use mec_topology::TopologyBuilder;
use mec_workload::{Request, WorkloadBuilder};

fn world(stations: usize, requests: usize, seed: u64) -> (Topology, Vec<Request>) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let population = WorkloadBuilder::new(&topo)
        .seed(seed)
        .count(requests)
        .build();
    (topo, population)
}

#[test]
fn partition_covers_every_station_exactly_once() {
    let (topo, _) = world(37, 0, 5);
    for shards in [1, 2, 3, 5, 8] {
        let plans = partition(&topo, shards);
        assert_eq!(plans.len(), shards);
        let mut owner = vec![None; topo.station_count()];
        for plan in &plans {
            assert!(
                !plan.stations.is_empty(),
                "shard {} owns nothing",
                plan.shard
            );
            for &g in &plan.stations {
                assert!(
                    owner[g.index()].replace(plan.shard).is_none(),
                    "{g} owned twice"
                );
            }
        }
        assert!(owner.iter().all(Option::is_some));
        // Routing agrees with ownership.
        let router = Router::new(shards, 16);
        assert!(router.consistent_with(&plans));
    }
}

#[test]
fn every_request_is_admitted_or_shed_never_lost() {
    let (topo, population) = world(24, 3_000, 11);
    let total = population.len() as u64;
    let load = LoadGen::poisson(population, 4_000.0, 50.0, 11);
    let cfg = ServeConfig {
        shards: 4,
        queue_capacity: 32,
        snapshot_every: 50,
        ..ServeConfig::default()
    };
    let outcome = serve(&topo, load, &cfg, |_| {}).unwrap();
    let snap = &outcome.final_snapshot;
    assert_eq!(snap.admitted + snap.shed, total);
    // Every admitted request reached a terminal phase.
    assert_eq!(
        (snap.completed + snap.expired + snap.aborted + snap.unserved) as u64,
        snap.admitted
    );
    // The run drained: no shard ended with queued work.
    assert!(
        snap.queue_depths.iter().all(|&d| d == 0),
        "{:?}",
        snap.queue_depths
    );
}

#[test]
fn full_queues_shed_load() {
    // One tiny shard, a huge burst: capacity 4 cannot hold 500 requests
    // arriving at 100k rps, so most of the load must shed.
    let (topo, population) = world(6, 500, 3);
    let load = LoadGen::poisson(population, 100_000.0, 50.0, 3);
    let cfg = ServeConfig {
        shards: 1,
        queue_capacity: 4,
        snapshot_every: 0,
        ..ServeConfig::default()
    };
    let outcome = serve(&topo, load, &cfg, |_| {}).unwrap();
    let snap = &outcome.final_snapshot;
    assert_eq!(snap.admitted + snap.shed, 500);
    assert!(
        snap.shed > 400,
        "expected heavy shedding, got {}",
        snap.shed
    );
    assert!(snap.admitted >= 4, "capacity worth of requests admitted");
}

#[test]
fn ample_capacity_sheds_nothing() {
    let (topo, population) = world(16, 800, 9);
    let load = LoadGen::poisson(population, 500.0, 50.0, 9);
    let cfg = ServeConfig {
        shards: 4,
        queue_capacity: 4_096,
        snapshot_every: 0,
        ..ServeConfig::default()
    };
    let outcome = serve(&topo, load, &cfg, |_| {}).unwrap();
    assert_eq!(outcome.final_snapshot.shed, 0);
    assert_eq!(outcome.final_snapshot.admitted, 800);
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let run = || {
        let (topo, population) = world(20, 2_000, 77);
        let load = LoadGen::poisson(population, 3_000.0, 50.0, 77);
        let cfg = ServeConfig {
            shards: 4,
            queue_capacity: 64,
            snapshot_every: 100,
            policy: "DynamicRR".to_string(),
            sim: SlotConfig {
                seed: 77,
                ..SlotConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut periodic = Vec::new();
        let outcome = serve(&topo, load, &cfg, |snap| {
            // Strip the wall-clock field: periodic snapshots must agree on
            // everything else.
            let mut s = snap.clone();
            s.slots_per_sec = None;
            periodic.push(s.to_json());
        })
        .unwrap();
        (
            periodic,
            outcome.final_snapshot.to_json(),
            outcome.slots_run,
        )
    };
    let (periodic_a, final_a, slots_a) = run();
    let (periodic_b, final_b, slots_b) = run();
    assert_eq!(slots_a, slots_b);
    assert_eq!(periodic_a, periodic_b);
    assert_eq!(final_a, final_b, "final snapshots must be byte-identical");
    assert!(!periodic_a.is_empty(), "expected periodic snapshots");
}

#[test]
fn solver_kind_does_not_change_snapshots() {
    let run = |solver| {
        let (topo, population) = world(20, 2_000, 77);
        let load = LoadGen::poisson(population, 3_000.0, 50.0, 77);
        let cfg = ServeConfig {
            shards: 4,
            queue_capacity: 64,
            snapshot_every: 0,
            policy: "DynamicRR".to_string(),
            solver,
            sim: SlotConfig {
                seed: 77,
                ..SlotConfig::default()
            },
            ..ServeConfig::default()
        };
        let outcome = serve(&topo, load, &cfg, |_| {}).unwrap();
        (outcome.final_snapshot.to_json(), outcome.slots_run)
    };
    let (dense, slots_dense) = run(mec_core::SolverKind::Dense);
    let (revised, slots_revised) = run(mec_core::SolverKind::Revised);
    assert_eq!(slots_dense, slots_revised);
    assert_eq!(dense, revised, "solver choice leaked into the serve run");
}

#[test]
fn shard_count_changes_results_but_not_conservation() {
    let totals: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|shards| {
            let (topo, population) = world(12, 600, 21);
            let load = LoadGen::poisson(population, 2_000.0, 50.0, 21);
            let cfg = ServeConfig {
                shards,
                queue_capacity: 128,
                snapshot_every: 0,
                ..ServeConfig::default()
            };
            let snap = serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot;
            assert_eq!(snap.admitted + snap.shed, 600, "shards={shards}");
            snap
        })
        .collect();
    // All shard counts conserve requests; rewards are positive everywhere.
    for snap in &totals {
        assert!(snap.total_reward > 0.0);
    }
}

#[test]
fn paced_clock_matches_virtual_decisions() {
    // A short run paced at a tiny slot length must make exactly the same
    // decisions as the virtual-clock run.
    let run = |clock: ClockMode| {
        let (topo, population) = world(8, 120, 13);
        let load = LoadGen::poisson(population, 5_000.0, 50.0, 13);
        let cfg = ServeConfig {
            shards: 2,
            queue_capacity: 64,
            snapshot_every: 0,
            clock,
            ..ServeConfig::default()
        };
        serve(&topo, load, &cfg, |_| {})
            .unwrap()
            .final_snapshot
            .to_json()
    };
    assert_eq!(
        run(ClockMode::Virtual),
        run(ClockMode::Paced { slot_ms: 0.05 })
    );
}

#[test]
fn unknown_policy_fails_before_spawning() {
    let (topo, population) = world(8, 10, 1);
    let load = LoadGen::replay(population);
    let cfg = ServeConfig {
        shards: 2,
        policy: "Oracle".to_string(),
        ..ServeConfig::default()
    };
    let err = serve(&topo, load, &cfg, |_| {}).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("Oracle"), "{msg}");
    assert!(msg.contains("DynamicRR"), "{msg}");
}
