//! Bounded-cost recovery tests: the disk mirror (CRC-framed journals and
//! checkpoints under `--state-dir`), deterministic salvage of corrupted
//! and truncated files, and the composition of periodic checkpoints with
//! live reconfiguration ops. The oracle throughout: disk faults may move
//! recovery counters, but the simulation outcome — every snapshot byte —
//! must match the clean run.

use mec_placement::{OpsLog, PlacementConfig};
use mec_serve::{serve, ChaosSpec, FaultConfig, LoadGen, ServeConfig, ServeError, ServeOutcome};
use mec_sim::SlotConfig;
use mec_topology::{Topology, TopologyBuilder};
use mec_workload::{Request, WorkloadBuilder};
use std::path::PathBuf;

fn world(stations: usize, requests: usize, seed: u64) -> (Topology, Vec<Request>) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let population = WorkloadBuilder::new(&topo)
        .seed(seed)
        .count(requests)
        .build();
    (topo, population)
}

/// A fresh scratch directory under the system temp dir; callers pass a
/// distinct `tag` so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mec-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Stateless-policy config (Greedy) so checkpoint replay is exact.
fn base_cfg(seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 4,
        queue_capacity: 4_096,
        snapshot_every: 0,
        policy: "Greedy".to_string(),
        sim: SlotConfig {
            seed,
            ..SlotConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn run(cfg: &ServeConfig, seed: u64) -> ServeOutcome {
    let (topo, population) = world(16, 1_200, seed);
    let load = LoadGen::poisson(population, 1_500.0, 50.0, seed);
    serve(&topo, load, cfg, |_| {}).unwrap()
}

/// Snapshot JSON with the fault block defaulted away: disk faults and
/// checkpoint cadence legitimately move those counters without being
/// allowed to move anything else.
fn defaulted_faults(out: &ServeOutcome) -> String {
    let mut snap = out.final_snapshot.clone();
    snap.faults = Default::default();
    snap.to_json()
}

#[test]
fn disk_mirror_leaves_the_run_byte_identical() {
    // Mirroring journals and checkpoints to disk is pure bookkeeping: a
    // clean run with --state-dir matches the stateless run on every byte,
    // fault counters included (nothing failed, nothing was salvaged).
    let chaos = "crash:shard=2@slot=9,recover@slot=14";
    let cfg = |state_dir: Option<PathBuf>| ServeConfig {
        chaos: ChaosSpec::parse(chaos).unwrap(),
        faults: FaultConfig {
            checkpoint_every: 6,
            ..FaultConfig::default()
        },
        state_dir,
        ..base_cfg(17)
    };
    let dir = scratch("mirror");
    let mirrored = run(&cfg(Some(dir.clone())), 17);
    let memory_only = run(&cfg(None), 17);
    assert_eq!(
        mirrored.final_snapshot.to_json(),
        memory_only.final_snapshot.to_json()
    );
    assert!(mirrored.final_snapshot.faults.restarts >= 1);
    assert_eq!(mirrored.final_snapshot.faults.disk_fallbacks, 0);
    // The mirror is really on disk: every shard has a journal file and
    // the checkpointed shards have a current checkpoint.
    for shard in 0..4 {
        assert!(dir.join(format!("shard-{shard}.journal")).exists());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_is_salvaged_and_outcome_is_unchanged() {
    // Flip bits in a journal, then crash its shard: recovery reads the
    // mirror back, CRC framing catches the damage, salvage truncates to
    // the last valid record, the verified-mirror check falls back to
    // memory and heals the file — and the simulation outcome matches the
    // fault-free run byte-for-byte.
    // checkpoint_every is longer than the fault slot so no prune has
    // rewritten the journal before the corruption lands on it.
    let cfg = |state_dir: Option<PathBuf>, disk: &str| ServeConfig {
        chaos: ChaosSpec::parse(&format!("crash:shard=1@slot=12,recover@slot=16{disk}")).unwrap(),
        faults: FaultConfig {
            checkpoint_every: 40,
            ..FaultConfig::default()
        },
        state_dir,
        ..base_cfg(23)
    };
    let dir_a = scratch("corrupt-a");
    let dir_b = scratch("corrupt-b");
    let fault = ",corrupt:shard=1@slot=10@target=journal@bytes=16";
    let faulted_a = run(&cfg(Some(dir_a.clone()), fault), 23);
    let faulted_b = run(&cfg(Some(dir_b.clone()), fault), 23);
    let clean = run(&cfg(None, ""), 23);
    // Deterministic: same seed + same faults twice over.
    assert_eq!(
        faulted_a.final_snapshot.to_json(),
        faulted_b.final_snapshot.to_json()
    );
    // Harmless: the outcome matches the clean run once recovery counters
    // are defaulted away.
    assert_eq!(defaulted_faults(&faulted_a), defaulted_faults(&clean));
    // Visible: the damage was detected, not silently absorbed.
    let faults = &faulted_b.final_snapshot.faults;
    assert!(
        faults.disk_fallbacks >= 1 || faults.disk_corrupt_records >= 1,
        "{faults:?}"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn truncated_checkpoint_falls_back_and_outcome_is_unchanged() {
    // Tear the tail off the current checkpoint, then crash the shard:
    // recovery falls back (prev checkpoint or memory), counts the
    // incident, and the outcome still matches the fault-free run.
    // The truncation lands at slot 15, while the shard is down (crashed
    // at 13, restarts at 17): after its last checkpoint write, before
    // recovery reads the file back — so no rotation can mask the damage.
    let cfg = |state_dir: Option<PathBuf>, disk: &str| ServeConfig {
        chaos: ChaosSpec::parse(&format!("crash:shard=0@slot=13,recover@slot=17{disk}")).unwrap(),
        faults: FaultConfig {
            checkpoint_every: 4,
            ..FaultConfig::default()
        },
        state_dir,
        ..base_cfg(31)
    };
    let dir = scratch("truncate");
    let fault = ",truncate:shard=0@slot=15@target=ckpt@bytes=12";
    let faulted = run(&cfg(Some(dir.clone()), fault), 31);
    let clean = run(&cfg(None, ""), 31);
    assert_eq!(defaulted_faults(&faulted), defaulted_faults(&clean));
    let faults = &faulted.final_snapshot.faults;
    assert!(
        faults.disk_fallbacks >= 1 || faults.disk_corrupt_records >= 1,
        "{faults:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_drain_with_checkpoints_matches_genesis_replay() {
    // The headline acceptance run: reconfiguration ops + periodic
    // checkpoints + a crash overlapping the drain window. The handoff
    // stays pending while the source shard is down, recovery replays from
    // the newest checkpoint plus the journal suffix and the recorded
    // handoff events, and the result is byte-identical to the
    // genesis-replay run.
    let cfg = |checkpoint_every: u64| ServeConfig {
        chaos: ChaosSpec::parse("crash:shard=1@slot=7,recover@slot=12").unwrap(),
        ops: OpsLog::parse_jsonl("{\"op\":\"drain\",\"station\":5,\"slot\":6,\"window\":4}\n")
            .unwrap(),
        faults: FaultConfig {
            checkpoint_every,
            ..FaultConfig::default()
        },
        placement: PlacementConfig {
            services: 12,
            cache_capacity: 6,
            seed: 53,
            ..PlacementConfig::default()
        },
        ..base_cfg(53)
    };
    let checkpointed = run(&cfg(5), 53);
    let genesis = run(&cfg(0), 53);
    assert_eq!(defaulted_faults(&checkpointed), defaulted_faults(&genesis));
    let snap = &checkpointed.final_snapshot;
    assert!(snap.faults.restarts >= 1, "{:?}", snap.faults);
    assert!(snap.faults.checkpoints >= 1, "{:?}", snap.faults);
    assert_eq!(snap.placement.drains, 1, "{:?}", snap.placement);
    assert_eq!(snap.placement.handoffs, 1, "{:?}", snap.placement);
}

#[test]
fn handoffs_report_moved_state_bytes() {
    // A drain that actually ships jobs credits moved_state_bytes with the
    // encoded slice size — the per-handoff cost the stall bench bounds.
    let cfg = ServeConfig {
        ops: OpsLog::parse_jsonl("{\"op\":\"drain\",\"station\":3,\"slot\":8,\"window\":2}\n")
            .unwrap(),
        placement: PlacementConfig {
            services: 12,
            cache_capacity: 6,
            seed: 11,
            ..PlacementConfig::default()
        },
        ..base_cfg(11)
    };
    let out = run(&cfg, 11);
    let place = &out.final_snapshot.placement;
    assert_eq!(place.handoffs, 1, "{place:?}");
    if place.migrated > 0 {
        assert!(place.moved_state_bytes > 0, "{place:?}");
    } else {
        assert_eq!(place.moved_state_bytes, 0, "{place:?}");
    }
}

#[test]
fn disk_faults_without_state_dir_are_rejected() {
    let cfg = ServeConfig {
        chaos: ChaosSpec::parse("corrupt:shard=0@slot=5@target=journal").unwrap(),
        ..base_cfg(3)
    };
    let (topo, population) = world(8, 50, 3);
    match serve(&topo, LoadGen::replay(population), &cfg, |_| {}) {
        Err(ServeError::Chaos(msg)) => assert!(msg.contains("state"), "{msg}"),
        other => panic!("expected a chaos validation error, got {other:?}"),
    }
}
