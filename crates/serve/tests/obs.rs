//! Observability integration tests (compiled only with the `obs`
//! feature): trace determinism across same-seed chaos runs, metrics-page
//! content, learner telemetry, and the snapshot recovery percentiles.

use mec_serve::{serve, ChaosSpec, LoadGen, ObsHub, ServeConfig};
use mec_sim::SlotConfig;
use mec_topology::{Topology, TopologyBuilder};
use mec_workload::{Request, WorkloadBuilder};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn world(stations: usize, requests: usize, seed: u64) -> (Topology, Vec<Request>) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let population = WorkloadBuilder::new(&topo)
        .seed(seed)
        .count(requests)
        .build();
    (topo, population)
}

fn chaos_cfg(seed: u64, chaos: &str) -> ServeConfig {
    ServeConfig {
        shards: 4,
        queue_capacity: 4_096,
        snapshot_every: 0,
        policy: "DynamicRR".to_string(),
        sim: SlotConfig {
            seed,
            ..SlotConfig::default()
        },
        chaos: ChaosSpec::parse(chaos).unwrap(),
        ..ServeConfig::default()
    }
}

/// A `Write` sink the test can read back after the hub is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One traced chaos run; returns (trace JSONL, hub, final snapshot).
fn traced_run(seed: u64, chaos: &str) -> (String, Arc<ObsHub>, mec_serve::Snapshot) {
    let (topo, population) = world(20, 2_500, seed);
    let load = LoadGen::poisson(population, 1_500.0, 50.0, seed);
    let buf = SharedBuf::default();
    let hub = Arc::new(
        ObsHub::new()
            .with_trace(mec_obs::TraceWriter::new(Box::new(buf.clone())))
            .with_telemetry_every(5),
    );
    let cfg = ServeConfig {
        obs: Some(Arc::clone(&hub)),
        ..chaos_cfg(seed, chaos)
    };
    let snap = serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot;
    (buf.contents(), hub, snap)
}

#[test]
fn same_seed_chaos_runs_trace_byte_identically() {
    let chaos = "crash:shard=1@slot=10,recover@slot=22";
    let (trace_a, hub_a, _) = traced_run(77, chaos);
    let (trace_b, _, _) = traced_run(77, chaos);
    assert!(!trace_a.is_empty());
    assert_eq!(
        trace_a, trace_b,
        "a traced run replayed with the same seed must yield an identical event stream"
    );
    assert_eq!(hub_a.trace_written(), trace_a.lines().count() as u64);
    // The stream carries the whole story: run boundaries, the injected
    // crash (written by the worker before it panicked), its detection,
    // the recovery, admission funnels, and learner state sweeps.
    for kind in [
        "\"kind\":\"run_start\"",
        "\"kind\":\"fault_injected\"",
        "\"kind\":\"fault_detected\"",
        "\"kind\":\"restart\"",
        "\"kind\":\"admission\"",
        "\"kind\":\"served\"",
        "\"kind\":\"arm_state\"",
        "\"kind\":\"run_end\"",
    ] {
        assert!(trace_a.contains(kind), "trace lacks {kind}");
    }
    assert!(trace_a.contains("\"fault\":\"crash\""), "{chaos}");
    assert!(trace_a.contains("\"reason\":\"disconnect\""));
    assert!(trace_a.contains("\"ok\":true"));
}

#[test]
fn report_renders_the_trace() {
    let (trace, _, _) = traced_run(42, "crash:shard=2@slot=8,recover@slot=15");
    let report = mec_obs::build_report(trace.lines()).expect("trace must parse");
    let rendered = report.render();
    assert!(rendered.contains("arm-elimination timeline"), "{rendered}");
    assert!(rendered.contains("admission funnel"), "{rendered}");
    assert!(rendered.contains("replayed"), "{rendered}");
}

#[test]
fn metrics_page_exposes_restarts_and_arm_pulls() {
    let (_, hub, snap) = traced_run(42, "crash:shard=2@slot=8,recover@slot=15");
    let page = hub.registry().render_prometheus();
    assert!(
        page.contains("mec_serve_restarts_total{shard=\"2\"} 1"),
        "{page}"
    );
    assert!(
        page.contains("mec_serve_restarts_total{shard=\"0\"} 0"),
        "{page}"
    );
    assert!(page.contains("mec_bandit_arm_pulls{"), "{page}");
    assert!(page.contains("mec_serve_latency_ms_bucket{"), "{page}");
    // Registry counters and the snapshot shim agree by construction.
    assert!(snap.faults.restarts >= 1, "{:?}", snap.faults);
    let json = hub.registry().render_json();
    assert!(json.contains("mec_serve_admitted_total"), "{json}");
}

/// One probed chaos run with a flight sink; returns (trace JSONL,
/// flight JSONL, hub, final snapshot).
fn probed_run(seed: u64, chaos: &str) -> (String, String, Arc<ObsHub>, mec_serve::Snapshot) {
    let (topo, population) = world(20, 2_500, seed);
    let load = LoadGen::poisson(population, 1_500.0, 50.0, seed);
    let (tbuf, fbuf) = (SharedBuf::default(), SharedBuf::default());
    let hub = Arc::new(
        ObsHub::new()
            .with_trace(mec_obs::TraceWriter::new(Box::new(tbuf.clone())))
            .with_flight(mec_obs::TraceWriter::new(Box::new(fbuf.clone())))
            .with_probe(true)
            .with_telemetry_every(5),
    );
    let cfg = ServeConfig {
        obs: Some(Arc::clone(&hub)),
        ..chaos_cfg(seed, chaos)
    };
    let snap = serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot;
    (tbuf.contents(), fbuf.contents(), hub, snap)
}

fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat).unwrap() + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap()
}

#[test]
fn probed_run_streams_learner_events_and_dumps_flight_on_crash() {
    let chaos = "crash:shard=1@slot=40,recover@slot=52";
    let (trace, flight, hub, _) = probed_run(9, chaos);
    for kind in ["\"kind\":\"arm_lifecycle\"", "\"kind\":\"learning_state\""] {
        assert!(trace.contains(kind), "trace lacks {kind}");
    }
    // The learning plane's gauges register only while the probe is on.
    let page = hub.registry().render_prometheus();
    assert!(page.contains("mec_learn_regret{"), "{page}");
    assert!(page.contains("mec_learn_steps{"), "{page}");
    // The live /learning.json document carries per-arm state.
    let doc = hub.learning_doc().lock().unwrap().clone();
    assert!(doc.contains("\"arms\""), "{doc}");
    assert!(doc.contains("\"regret\""), "{doc}");
    assert!(doc.contains("\"radius\""), "{doc}");
    // The crash tripped a flight dump, and every dump section in the
    // stream ends on its own triggering slot (snapshots are sorted).
    assert!(
        flight.contains("\"trigger\":\"crash\""),
        "crash must dump the flight recorder"
    );
    let lines: Vec<&str> = flight.lines().collect();
    let mut dumps = 0;
    for (i, line) in lines.iter().enumerate() {
        if !line.contains("\"kind\":\"flight_dump\"") {
            continue;
        }
        dumps += 1;
        let section_end = lines[i + 1..]
            .iter()
            .position(|l| l.contains("\"kind\":\"flight_dump\""))
            .map_or(lines.len() - 1, |off| i + off);
        assert_eq!(
            field_u64(lines[section_end], "slot"),
            field_u64(line, "slot"),
            "dump at line {i} must end on its triggering slot"
        );
    }
    assert!(dumps >= 1);
    assert_eq!(hub.flight_written(), lines.len() as u64);
}

#[test]
fn probe_observes_without_perturbing_the_run() {
    // The probe is telemetry-only: a probed run and a probe-detached run
    // with the same seed and chaos must land on identical final
    // snapshots (same decisions, rewards, and fault accounting).
    let chaos = "crash:shard=1@slot=10,recover@slot=22";
    let (_, _, _, probed) = probed_run(77, chaos);
    let (_, _, detached) = traced_run(77, chaos);
    assert_eq!(probed.to_json(), detached.to_json());
}

#[test]
fn recovery_percentiles_populate_under_chaos() {
    // One restart with a pinned 12-slot outage: every percentile is 12.
    let (_, _, snap) = traced_run(77, "crash:shard=1@slot=10,recover@slot=22");
    assert_eq!(snap.faults.recovery_latency_slots, 12, "{:?}", snap.faults);
    assert_eq!(snap.faults.recovery_p50_slots, 12);
    assert_eq!(snap.faults.recovery_p95_slots, 12);
    assert_eq!(snap.faults.recovery_max_slots, 12);
}
