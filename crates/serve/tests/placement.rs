//! Placement and live-reconfiguration tests of the serving runtime: the
//! byte-identical determinism oracle over ops scripts, the ops-journal
//! replay equivalence, crash-mid-drain recovery, and conservation of
//! requests through installs, redirects, and handoffs.

use mec_placement::{OpsLog, PlacementConfig};
use mec_serve::{serve, ChaosSpec, FaultConfig, LoadGen, ServeConfig, ServeError, Snapshot};
use mec_sim::SlotConfig;
use mec_topology::{Topology, TopologyBuilder};
use mec_workload::{Request, WorkloadBuilder};

fn world(stations: usize, requests: usize, seed: u64) -> (Topology, Vec<Request>) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let population = WorkloadBuilder::new(&topo)
        .seed(seed)
        .count(requests)
        .build();
    (topo, population)
}

/// A placement-enabled config with ample queue capacity, so backlog
/// shedding cannot mask placement effects.
fn placement_cfg(seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 4,
        queue_capacity: 4_096,
        snapshot_every: 0,
        policy: "Greedy".to_string(),
        sim: SlotConfig {
            seed,
            ..SlotConfig::default()
        },
        placement: PlacementConfig {
            services: 12,
            cache_capacity: 6,
            seed,
            ..PlacementConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn assert_conserved(snap: &Snapshot, total: u64) {
    assert_eq!(snap.admitted + snap.shed, total, "{snap:?}");
    assert_eq!(
        (snap.completed + snap.expired + snap.aborted + snap.unserved) as u64,
        snap.admitted
    );
}

#[test]
fn placement_runs_with_ops_repeat_byte_identically() {
    // The tentpole oracle: same seed + same ops script ⇒ byte-identical
    // periodic and final snapshots, across a drain, a leave, and a
    // re-join.
    let script = "\
        {\"op\":\"drain\",\"station\":3,\"slot\":5,\"window\":4}\n\
        {\"op\":\"leave\",\"station\":7,\"slot\":9}\n\
        {\"op\":\"join\",\"station\":3,\"slot\":18}\n";
    let run = || {
        let (topo, population) = world(16, 1_500, 11);
        let load = LoadGen::poisson(population, 1_500.0, 50.0, 11);
        let cfg = ServeConfig {
            snapshot_every: 10,
            ops: OpsLog::parse_jsonl(script).unwrap(),
            ..placement_cfg(11)
        };
        let mut periodic = Vec::new();
        let outcome = serve(&topo, load, &cfg, |snap| {
            let mut s = snap.clone();
            s.slots_per_sec = None;
            periodic.push(s.to_json());
        })
        .unwrap();
        (periodic, outcome)
    };
    let (periodic_a, out_a) = run();
    let (periodic_b, out_b) = run();
    assert_eq!(periodic_a, periodic_b);
    assert_eq!(
        out_a.final_snapshot.to_json(),
        out_b.final_snapshot.to_json()
    );
    assert_eq!(out_a.ops_journal, out_b.ops_journal);
    let place = &out_a.final_snapshot.placement;
    assert!(place.hits > 0, "{place:?}");
    assert!(place.misses > 0, "{place:?}");
    assert!(place.installs_cold > 0, "{place:?}");
    assert_eq!(place.drains, 1, "{place:?}");
    assert_eq!(place.leaves, 1, "{place:?}");
    assert_eq!(place.joins, 1, "{place:?}");
    assert_eq!(place.handoffs, 2, "{place:?}");
    assert!(place.rehomed > 0, "{place:?}");
    assert_conserved(&out_a.final_snapshot, 1_500);
    // A pure reconfiguration run keeps quiet fault stats: handoff
    // rebuilds are not failures.
    assert!(
        out_a.final_snapshot.faults.is_quiet(),
        "{:?}",
        out_a.final_snapshot.faults
    );
}

#[test]
fn ops_journal_replay_reproduces_the_identical_snapshot() {
    // Chaos-carried reconfig directives and a replayed --ops-script style
    // journal are the same run: feed the journal a run wrote back in as
    // the ops script of a fresh run and the final snapshot is
    // byte-identical. This is the crash-and-replay oracle for the ops
    // journal itself.
    let run = |chaos: &str, ops: OpsLog| {
        let (topo, population) = world(12, 1_000, 29);
        let load = LoadGen::poisson(population, 1_200.0, 50.0, 29);
        let cfg = ServeConfig {
            chaos: ChaosSpec::parse(chaos).unwrap(),
            ops,
            ..placement_cfg(29)
        };
        serve(&topo, load, &cfg, |_| {}).unwrap()
    };
    let original = run(
        "drain:station=2@slot=6@window=3,join:station=2@slot=20",
        OpsLog::default(),
    );
    assert!(!original.ops_journal.is_empty());
    let replayed = run("", OpsLog::parse_jsonl(&original.ops_journal).unwrap());
    assert_eq!(
        original.final_snapshot.to_json(),
        replayed.final_snapshot.to_json()
    );
    assert_eq!(original.ops_journal, replayed.ops_journal);
}

#[test]
fn crash_mid_drain_recovers_losslessly_and_repeats() {
    // A shard crash overlapping a drain window: the handoff stays pending
    // while the source shard is down, executes only after its recovery,
    // and the whole composition still repeats byte-identically and
    // conserves every request.
    let run = || {
        let (topo, population) = world(16, 1_800, 53);
        let load = LoadGen::poisson(population, 2_000.0, 50.0, 53);
        let cfg = ServeConfig {
            // Station 5 lives in shard 1 (round-robin by id, 4 shards);
            // the crash window [7, 12) covers the drain handoff at 10.
            chaos: ChaosSpec::parse(
                "crash:shard=1@slot=7,recover@slot=12,drain:station=5@slot=6@window=4",
            )
            .unwrap(),
            ..placement_cfg(53)
        };
        serve(&topo, load, &cfg, |_| {}).unwrap()
    };
    let out_a = run();
    let out_b = run();
    assert_eq!(
        out_a.final_snapshot.to_json(),
        out_b.final_snapshot.to_json()
    );
    let snap = &out_a.final_snapshot;
    assert!(snap.faults.restarts >= 1, "{:?}", snap.faults);
    assert_eq!(snap.placement.drains, 1, "{:?}", snap.placement);
    assert_eq!(snap.placement.handoffs, 1, "{:?}", snap.placement);
    assert_conserved(snap, 1_800);
}

#[test]
fn disabled_placement_stays_quiet() {
    // The default config (services == 0, no ops) must not change a run:
    // placement stats stay all-zero and the ops journal stays empty.
    let run = || {
        let (topo, population) = world(10, 600, 7);
        let load = LoadGen::poisson(population, 1_000.0, 50.0, 7);
        let cfg = ServeConfig {
            shards: 2,
            queue_capacity: 4_096,
            snapshot_every: 0,
            policy: "Greedy".to_string(),
            sim: SlotConfig {
                seed: 7,
                ..SlotConfig::default()
            },
            ..ServeConfig::default()
        };
        serve(&topo, load, &cfg, |_| {}).unwrap()
    };
    let out_a = run();
    let out_b = run();
    assert!(
        out_a.final_snapshot.placement.is_quiet(),
        "{:?}",
        out_a.final_snapshot.placement
    );
    assert!(out_a.ops_journal.is_empty());
    assert_eq!(
        out_a.final_snapshot.to_json(),
        out_b.final_snapshot.to_json()
    );
    assert_conserved(&out_a.final_snapshot, 600);
}

#[test]
fn ops_compose_with_periodic_checkpointing() {
    // Handoffs now ship extracted station slices as replayable events, so
    // reconfiguration ops compose with periodic checkpoints: the same run
    // with and without checkpointing produces byte-identical snapshots
    // (modulo the checkpoint counter itself, which is defaulted away).
    let run = |checkpoint_every: u64| {
        let (topo, population) = world(8, 400, 1);
        let load = LoadGen::poisson(population, 1_000.0, 50.0, 1);
        let cfg = ServeConfig {
            faults: FaultConfig {
                checkpoint_every,
                ..FaultConfig::default()
            },
            ops: OpsLog::parse_jsonl(
                "{\"op\":\"drain\",\"station\":1,\"slot\":2,\"window\":1}\n\
                 {\"op\":\"leave\",\"station\":5,\"slot\":6}\n",
            )
            .unwrap(),
            ..placement_cfg(1)
        };
        let mut out = serve(&topo, load, &cfg, |_| {}).unwrap();
        out.final_snapshot.faults = Default::default();
        out
    };
    let checkpointed = run(8);
    let genesis = run(0);
    assert_eq!(
        checkpointed.final_snapshot.to_json(),
        genesis.final_snapshot.to_json()
    );
    assert_eq!(checkpointed.ops_journal, genesis.ops_journal);
    assert_eq!(checkpointed.final_snapshot.placement.handoffs, 2);
    assert_conserved(&checkpointed.final_snapshot, 400);
}

#[test]
fn ops_naming_a_missing_station_are_rejected() {
    let (topo, population) = world(8, 50, 1);
    let load = LoadGen::replay(population);
    let cfg = ServeConfig {
        ops: OpsLog::parse_jsonl("{\"op\":\"leave\",\"station\":99,\"slot\":2}\n").unwrap(),
        ..placement_cfg(1)
    };
    match serve(&topo, load, &cfg, |_| {}) {
        Err(ServeError::Reconfig(msg)) => {
            assert!(msg.contains("99"), "{msg}");
        }
        other => panic!("expected a reconfiguration validation error, got {other:?}"),
    }
}
