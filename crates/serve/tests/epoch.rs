//! Watermark-ordering tests of the epoch/actor runtime: for any seed,
//! shard count, and epoch horizon, the deterministic merge at the
//! watermark must produce exactly the lockstep (horizon = 1) result —
//! the per-slot interleaving of shard progress events and batched
//! cross-shard messages is allowed to vary, the folded outcome is not.

use mec_serve::{serve, ChaosSpec, FaultConfig, FaultStats, LoadGen, ServeConfig, Snapshot};
use mec_sim::SlotConfig;
use mec_topology::TopologyBuilder;
use mec_workload::WorkloadBuilder;
use proptest::prelude::*;

/// Runs the serving loop and returns every periodic snapshot
/// (serialized) plus the final snapshot — the byte-level oracle for
/// merge equality.
fn run_once(
    seed: u64,
    shards: usize,
    horizon: u64,
    chaos: &str,
    requests: usize,
    rps: f64,
) -> (Vec<String>, Snapshot) {
    let topo = TopologyBuilder::new(12).seed(seed).build();
    let population = WorkloadBuilder::new(&topo)
        .seed(seed)
        .count(requests)
        .build();
    let load = LoadGen::poisson(population, rps, 50.0, seed);
    let cfg = ServeConfig {
        shards,
        queue_capacity: 256,
        snapshot_every: 16,
        epoch_horizon: horizon,
        policy: "Greedy".to_string(),
        chaos: ChaosSpec::parse(chaos).expect("valid chaos spec"),
        sim: SlotConfig {
            seed,
            ..SlotConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut periodic = Vec::new();
    let outcome = serve(&topo, load, &cfg, |snap| {
        let mut s = snap.clone();
        s.slots_per_sec = None; // wall-clock, legitimately varies
        periodic.push(s.to_json());
    })
    .expect("serving run completes");
    (periodic, outcome.final_snapshot)
}

/// A snapshot with the fault counters zeroed, for comparing a chaos run
/// against its fault-free twin (everything else must match exactly).
fn defaulted_faults(snapshot: &Snapshot) -> String {
    Snapshot {
        faults: FaultStats::default(),
        ..snapshot.clone()
    }
    .to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any epoch horizon folds to the lockstep merge: periodic and
    /// final snapshots are byte-identical to the horizon-1 run for the
    /// same seed and shard count, for any interleaving the run-ahead
    /// leases produce.
    #[test]
    fn any_horizon_matches_the_lockstep_merge(
        seed in 0u64..1000,
        shards in 1usize..4,
        horizon in 2u64..12,
    ) {
        let (lock_periodic, lock_final) =
            run_once(seed, shards, 1, "", 400, 2_000.0);
        let (run_periodic, run_final) =
            run_once(seed, shards, horizon, "", 400, 2_000.0);
        prop_assert_eq!(lock_periodic, run_periodic);
        prop_assert_eq!(lock_final.to_json(), run_final.to_json());
    }

    /// Same property with scripted chaos in the run-ahead window: the
    /// fault fires at its exact slot and recovery replays to the same
    /// merge, horizon notwithstanding.
    #[test]
    fn chaos_under_any_horizon_matches_lockstep(
        seed in 0u64..500,
        horizon in 2u64..10,
        crash_slot in 3u64..12,
    ) {
        let chaos = format!(
            "crash:shard=1@slot={crash_slot},recover@slot={}",
            crash_slot + 4
        );
        let (lock_periodic, lock_final) =
            run_once(seed, 2, 1, &chaos, 400, 2_000.0);
        let (run_periodic, run_final) =
            run_once(seed, 2, horizon, &chaos, 400, 2_000.0);
        prop_assert_eq!(lock_periodic, run_periodic);
        prop_assert_eq!(lock_final.to_json(), run_final.to_json());
    }
}

#[test]
fn crash_during_run_ahead_replays_to_byte_identical_snapshots() {
    // The crash lands mid-lease (slot 10, horizon 8 spans past it), so
    // the worker dies while holding a multi-slot grant; the death
    // notice must fold at exactly slot 10 and journal replay must
    // reproduce the fault-free bytes.
    let chaos = "crash:shard=1@slot=10,recover@slot=18";
    let (_, clean) = run_once(91, 4, 8, "", 1_500, 3_000.0);
    let (_, lockstep) = run_once(91, 4, 1, chaos, 1_500, 3_000.0);
    let (_, run_ahead) = run_once(91, 4, 8, chaos, 1_500, 3_000.0);
    assert!(run_ahead.faults.restarts >= 1, "{:?}", run_ahead.faults);
    assert_eq!(
        lockstep.to_json(),
        run_ahead.to_json(),
        "horizon must not change the merge"
    );
    assert_eq!(
        defaulted_faults(&run_ahead),
        defaulted_faults(&clean),
        "recovery must replay to the fault-free bytes"
    );
}

#[test]
fn stall_during_run_ahead_is_detected_at_its_exact_slot() {
    // A stalled worker parks without exiting; detection rides the fold
    // deadline. The degraded-slot accounting (detection slot through
    // recovery) must match the lockstep run exactly.
    let run = |horizon: u64| {
        let topo = TopologyBuilder::new(12).seed(7).build();
        let population = WorkloadBuilder::new(&topo).seed(7).count(600).build();
        let load = LoadGen::poisson(population, 2_000.0, 50.0, 7);
        let cfg = ServeConfig {
            shards: 2,
            queue_capacity: 1_024,
            snapshot_every: 0,
            epoch_horizon: horizon,
            policy: "Greedy".to_string(),
            faults: FaultConfig {
                tick_timeout_ms: 200,
                ..FaultConfig::default()
            },
            chaos: ChaosSpec::parse("stall:shard=0@slot=6,recover@slot=12").unwrap(),
            sim: SlotConfig {
                seed: 7,
                ..SlotConfig::default()
            },
            ..ServeConfig::default()
        };
        serve(&topo, load, &cfg, |_| {}).unwrap().final_snapshot
    };
    let lockstep = run(1);
    let run_ahead = run(8);
    assert!(run_ahead.faults.restarts >= 1, "{:?}", run_ahead.faults);
    assert!(
        run_ahead.faults.degraded_slots >= 1,
        "{:?}",
        run_ahead.faults
    );
    assert_eq!(lockstep.to_json(), run_ahead.to_json());
}

#[test]
fn reconfig_ops_quiesce_the_run_ahead_and_merge_identically() {
    // Cross-shard traffic (a station drain's extract/absorb handoff) is
    // slot-stamped and rides the mailboxes; while ops are pending the
    // coordinator refuses to lease ahead, so the handoff executes at
    // its exact slot under every horizon.
    let run = |horizon: u64| {
        run_once(
            13,
            3,
            horizon,
            "drain:station=2@slot=9@window=3",
            800,
            2_500.0,
        )
        .1
    };
    let lockstep = run(1);
    let run_ahead = run(8);
    assert!(lockstep.placement.handoffs > 0, "{:?}", lockstep.placement);
    assert_eq!(lockstep.to_json(), run_ahead.to_json());
}
