//! Observability wiring for the serving runtime: the [`ObsHub`]
//! attachment operators hand to [`crate::ServeConfig`], and the
//! driver-side [`ObsState`] that owns every metric handle and emits the
//! structured trace.
//!
//! The metrics [`Registry`] is **always on**: the supervision loop
//! sources its snapshot fault counters from registry atomics whether or
//! not the `obs` cargo feature is enabled, so the counters the operator
//! scrapes and the counters the snapshot serializes can never disagree.
//! Event *tracing* and wall-clock *span timing*, by contrast, expand
//! through the [`mec_obs::event!`] / [`mec_obs::span!`] macros and
//! compile to nothing without the `obs` feature.
//!
//! ## Determinism
//!
//! Everything that can reach a snapshot or the trace derives from
//! virtual slots, event counts, and rewards. Wall-clock quantities
//! (`mec_serve_step_ms`) live only in the registry for live scraping.
//! Worker-side events go through per-shard [`TraceRing`]s that the
//! driver drains at the slot barrier in shard order, so a traced run
//! replayed with the same seed yields a byte-identical event stream.

use crate::chaos::{DiskFaultKind, DiskFaultSpec, DiskTarget};
use crate::journal::DiskIncidents;
use crate::router::Router;
use crate::shard::ShardTick;
use crate::snapshot::{FaultStats, PlacementStats};
use mec_core::RegretAccountant;
use mec_obs::{
    Counter, DecisionSnapshot, EventSink, FlightRecorder, FlightTrigger, FlightTriggerSet, Gauge,
    Histogram, LifecycleRecord, LifecycleRing, LifecycleSink, LifecycleWriter, PageHinkley,
    Registry, SharedDoc, SloEngine, SloTransition, TraceEvent, TraceRing, TraceWriter,
    LATENCY_MS_BOUNDS, STEP_MS_BOUNDS,
};
use mec_placement::{InstallDone, PlacementState, ReconfigOp};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Capacity of each worker's event ring — ample for one slot's worth of
/// fault events between barrier drains.
const RING_CAP: usize = 4_096;

/// Capacity of each worker's lifecycle ring. Lifecycle records are per
/// request (start/complete/expire/abort), so the ring is sized for a
/// burst of several slots' worth of terminal events between drains.
const LIFE_RING_CAP: usize = 65_536;

/// Install latencies are a handful of slots (warm 1–2, cold 2–5), so the
/// buckets hug the small integers.
const INSTALL_SLOT_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 13.0];

/// Observability attachment for a serving run: a shared metrics
/// registry (scrape it with [`mec_obs::MetricsServer`]), an optional
/// JSONL trace sink, and the learner-telemetry polling interval.
///
/// The hub outlives the run: registry counters accumulate across every
/// run attached to the same hub (Prometheus semantics). Runs without a
/// hub get a private registry, so determinism tests are unaffected.
pub struct ObsHub {
    registry: Arc<Registry>,
    trace: Option<Mutex<TraceWriter>>,
    lifecycle: Option<Mutex<LifecycleWriter>>,
    slo_doc: SharedDoc,
    learning_doc: SharedDoc,
    flight_doc: SharedDoc,
    flight: Option<Mutex<TraceWriter>>,
    flight_on: FlightTriggerSet,
    probe: bool,
    stall_events: bool,
    telemetry_every: u64,
}

impl fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHub")
            .field("tracing", &self.trace.is_some())
            .field("lifecycle", &self.lifecycle.is_some())
            .field("flight", &self.flight.is_some())
            .field("probe", &self.probe)
            .field("stall_events", &self.stall_events)
            .field("telemetry_every", &self.telemetry_every)
            .finish_non_exhaustive()
    }
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsHub {
    /// A hub with a fresh registry, no trace sink, and learner telemetry
    /// polled every 25 slots.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// A hub over an existing registry (e.g. one already served by a
    /// [`mec_obs::MetricsServer`]).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Self {
            registry,
            trace: None,
            lifecycle: None,
            slo_doc: Arc::new(Mutex::new(String::new())),
            learning_doc: Arc::new(Mutex::new(String::new())),
            flight_doc: Arc::new(Mutex::new(String::new())),
            flight: None,
            flight_on: FlightTriggerSet::all(),
            probe: false,
            stall_events: false,
            telemetry_every: 25,
        }
    }

    /// Attaches a JSONL trace sink; structured events are appended to it
    /// as the run executes (requires the `obs` cargo feature to emit
    /// anything).
    #[must_use]
    pub fn with_trace(mut self, writer: TraceWriter) -> Self {
        self.trace = Some(Mutex::new(writer));
        self
    }

    /// Attaches a lifecycle sink; per-request lifecycle records (admit,
    /// start, complete, ...) are appended to it as JSONL (requires the
    /// `lifecycle` cargo feature to emit anything).
    #[must_use]
    pub fn with_lifecycle(mut self, writer: LifecycleWriter) -> Self {
        self.lifecycle = Some(Mutex::new(writer));
        self
    }

    /// Attaches the learner probe: every shard policy streams arm-
    /// lifecycle events, decision records, and LP solve times to the
    /// driver, feeding the regret accountant, drift detectors, flight
    /// recorder, and the `/learning.json` document. Off by default —
    /// with the probe detached policies take the exact pre-probe code
    /// paths, so snapshots stay byte-identical.
    #[must_use]
    pub fn with_probe(mut self, on: bool) -> Self {
        self.probe = on;
        self
    }

    /// Attaches a flight-recorder sink: on each enabled trigger (SLO
    /// breach, drift firing, shard crash) the recorder's decision rings
    /// are dumped to this JSONL writer. Implies nothing by itself — the
    /// rings only fill while the probe is attached.
    #[must_use]
    pub fn with_flight(mut self, writer: TraceWriter) -> Self {
        self.flight = Some(Mutex::new(writer));
        self
    }

    /// Selects which events trigger a flight-recorder dump (default:
    /// all of SLO breach, drift, and crash).
    #[must_use]
    pub fn with_flight_triggers(mut self, on: FlightTriggerSet) -> Self {
        self.flight_on = on;
        self
    }

    /// Emits run-end `stall_shard` / `stall_driver` events into the
    /// trace. Off by default because their payloads are wall-clock
    /// measurements, which would break trace byte-identity across
    /// same-seed runs.
    #[must_use]
    pub fn with_stall_events(mut self, on: bool) -> Self {
        self.stall_events = on;
        self
    }

    /// Sets how often (in slots) shard learners are polled for
    /// telemetry; 0 disables polling.
    #[must_use]
    pub fn with_telemetry_every(mut self, every: u64) -> Self {
        self.telemetry_every = every;
        self
    }

    /// The hub's registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Whether a trace sink is attached.
    pub fn has_trace(&self) -> bool {
        self.trace.is_some()
    }

    /// Whether a lifecycle sink is attached.
    pub fn has_lifecycle(&self) -> bool {
        self.lifecycle.is_some()
    }

    /// Whether run-end stall events were requested.
    pub fn stall_events(&self) -> bool {
        self.stall_events
    }

    /// The live SLO state document served at `/slo.json` — hand it to
    /// [`mec_obs::MetricsServer::bind_with_slo`]; the runtime overwrites
    /// it every slot while an SLO engine is configured.
    pub fn slo_doc(&self) -> SharedDoc {
        Arc::clone(&self.slo_doc)
    }

    /// The live learner state document served at `/learning.json` —
    /// hand it to [`mec_obs::MetricsServer::bind_with_docs`]; the
    /// runtime overwrites it at every learner-telemetry sweep while the
    /// probe is attached.
    pub fn learning_doc(&self) -> SharedDoc {
        Arc::clone(&self.learning_doc)
    }

    /// The on-demand flight-recorder document served at `/flight.json` —
    /// hand it to [`mec_obs::MetricsServer::bind_with_docs`]; the runtime
    /// overwrites it with the current decision rings (JSONL, sorted by
    /// slot then shard) at every learner-telemetry sweep while the probe
    /// is attached. Reading it never counts as a dump.
    pub fn flight_doc(&self) -> SharedDoc {
        Arc::clone(&self.flight_doc)
    }

    /// Whether the learner probe was requested.
    pub fn probe(&self) -> bool {
        self.probe
    }

    /// Whether a flight-recorder sink is attached.
    pub fn has_flight(&self) -> bool {
        self.flight.is_some()
    }

    /// The enabled flight-dump trigger set.
    pub fn flight_triggers(&self) -> FlightTriggerSet {
        self.flight_on
    }

    /// Events successfully written to the flight-recorder sink so far.
    pub fn flight_written(&self) -> u64 {
        self.flight.as_ref().map_or(0, |w| {
            w.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .written()
        })
    }

    /// Appends one event to the flight-recorder sink, if any.
    pub(crate) fn write_flight(&self, event: &TraceEvent) {
        if let Some(writer) = &self.flight {
            writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .write(event);
        }
    }

    /// Flushes the flight sink immediately — dumps fire on faults, so
    /// waiting for the run-end flush could lose the one dump that
    /// mattered.
    pub(crate) fn flush_flight(&self) {
        if let Some(writer) = &self.flight {
            writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .flush();
        }
    }

    /// Lifecycle records successfully written to the sink so far.
    pub fn lifecycle_written(&self) -> u64 {
        self.lifecycle.as_ref().map_or(0, |w| {
            w.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .written()
        })
    }

    /// Appends one record to the lifecycle sink, if any.
    pub(crate) fn write_life(&self, record: &LifecycleRecord) {
        if let Some(writer) = &self.lifecycle {
            writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .write(record);
        }
    }

    /// Events successfully written to the trace sink so far.
    pub fn trace_written(&self) -> u64 {
        self.trace.as_ref().map_or(0, |w| {
            w.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .written()
        })
    }

    /// Appends one event to the trace sink, if any.
    pub(crate) fn write_event(&self, event: &TraceEvent) {
        if let Some(writer) = &self.trace {
            writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .write(event);
        }
    }

    /// Flushes the trace, lifecycle, and flight sinks, if any.
    pub fn flush(&self) {
        if let Some(writer) = &self.trace {
            writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .flush();
        }
        if let Some(writer) = &self.lifecycle {
            writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .flush();
        }
        self.flush_flight();
    }
}

/// Always-on wall-clock stall instrumentation a worker carries: the
/// cumulative work / mailbox-wait / watermark-wait gauges (ms) behind
/// the stall attribution, plus a per-grant wait histogram. Gauges are
/// cumulative across restarts because a replacement worker re-reads
/// them at spawn.
#[derive(Clone, Debug)]
pub struct StallProbe {
    /// Cumulative wall-clock ms executing leased slots (engine steps
    /// plus checkpoint/telemetry/event assembly).
    pub(crate) work_ms: Arc<Gauge>,
    /// Cumulative wall-clock ms handling cross-shard mailbox traffic
    /// (inject / extract / absorb) between grants.
    pub(crate) mailbox_ms: Arc<Gauge>,
    /// Cumulative wall-clock ms blocked on the mailbox waiting for the
    /// coordinator to advance the watermark and extend the lease.
    pub(crate) watermark_ms: Arc<Gauge>,
    /// Per-grant watermark-wait distribution (slots inside a multi-slot
    /// lease wait zero — that is the point of run-ahead).
    pub(crate) wait_hist: Arc<Histogram>,
}

/// Per-shard learner gauges, with per-arm series grown on first sight.
struct BanditGauges {
    threshold_mhz: Arc<Gauge>,
    active_arms: Arc<Gauge>,
    regret_proxy: Arc<Gauge>,
    total_pulls: Arc<Gauge>,
    per_arm: Vec<ArmGauges>,
}

struct ArmGauges {
    pulls: Arc<Counter>,
    mean: Arc<Gauge>,
    ucb: Arc<Gauge>,
    lcb: Arc<Gauge>,
    active: Arc<Gauge>,
}

/// Per-arm drift-detector state: the Page–Hinkley statistic plus the
/// SLO-style suspected/cleared transition flag.
struct ArmDrift {
    ph: PageHinkley,
    suspected: bool,
}

/// Per-shard regret gauges (built only while the probe is attached, so
/// a probe-detached run's exposition is unchanged).
struct LearnGauges {
    regret: Arc<Gauge>,
    cum_reward: Arc<Gauge>,
    oracle: Arc<Gauge>,
    steps: Arc<Gauge>,
    drift_total: Arc<Counter>,
}

/// Per-shard slot-LP introspection gauges (built on the first solver
/// sweep — LP-free policies never create them).
struct LpGauges {
    solves: Arc<Gauge>,
    warm_hits: Arc<Gauge>,
    warm_fallbacks: Arc<Gauge>,
    cold_starts: Arc<Gauge>,
    pivots: Arc<Gauge>,
    refactorizations: Arc<Gauge>,
}

/// Renders a float for the learning document; non-finite values (an
/// unpulled arm's infinite radius) become JSON `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Driver-side learning plane: per-shard regret accountants fed from
/// `sample` probe events, per-arm Page–Hinkley drift detectors, the
/// decision flight recorder, and every gauge they feed. Present only
/// while the hub requested the probe.
struct LearnPlane {
    regret: Vec<RegretAccountant>,
    drift: Vec<Vec<ArmDrift>>,
    gauges: Vec<LearnGauges>,
    lp: Vec<Option<LpGauges>>,
    /// Last solver sweep per shard (rides along in decision snapshots).
    lp_last: Vec<mec_sim::SolverTelemetry>,
    /// Last telemetry-sweep arm views per shard, behind `/learning.json`.
    last_arms: Vec<Vec<mec_sim::ArmTelemetry>>,
    /// Wall-clock LP solve times (live metrics only, like step timing).
    solve_ms: Arc<Histogram>,
    /// Last-seen cumulative probe-ring drop count per shard.
    probe_dropped: Vec<u64>,
    probe_drop_counter: Arc<Counter>,
    recorder: FlightRecorder,
    /// Last slot the flight document was rendered at. Sweeps arrive once
    /// per shard per interval, but the decision rings they render are
    /// driver-side and shared — rendering the (string-heavy) flight
    /// JSONL once per sweep slot loses nothing and divides its cost by
    /// the shard count.
    doc_slot: u64,
}

impl LearnPlane {
    fn new(shards: usize, r: &Arc<Registry>) -> Self {
        let gauges = (0..shards)
            .map(|s| {
                let l: &[(&str, &str)] = &[("shard", &s.to_string())];
                LearnGauges {
                    regret: r.gauge(
                        "mec_learn_regret",
                        "cumulative regret vs the per-step hindsight oracle",
                        l,
                    ),
                    cum_reward: r.gauge(
                        "mec_learn_cum_reward",
                        "cumulative realized normalized reward",
                        l,
                    ),
                    oracle: r.gauge("mec_learn_oracle", "cumulative per-step oracle bound", l),
                    steps: r.gauge("mec_learn_steps", "learner updates folded into regret", l),
                    drift_total: r.counter(
                        "mec_learn_drift_suspected_total",
                        "Page-Hinkley drift firings",
                        l,
                    ),
                }
            })
            .collect();
        Self {
            regret: vec![RegretAccountant::new(); shards],
            drift: (0..shards).map(|_| Vec::new()).collect(),
            gauges,
            lp: (0..shards).map(|_| None).collect(),
            lp_last: vec![mec_sim::SolverTelemetry::default(); shards],
            last_arms: vec![Vec::new(); shards],
            solve_ms: r.histogram(
                "mec_slotlp_solve_ms",
                "wall-clock slot-LP solve time (live only, never snapshotted)",
                &[],
                STEP_MS_BOUNDS,
            ),
            probe_dropped: vec![0; shards],
            probe_drop_counter: r.counter(
                "mec_obs_probe_dropped_total",
                "learner-probe events lost at the policy's bounded recorder",
                &[],
            ),
            recorder: FlightRecorder::new(mec_obs::flight::DEFAULT_FLIGHT_CAPACITY),
            doc_slot: u64::MAX,
        }
    }

    /// Renders the `/learning.json` document: per-shard regret
    /// accounting, drift firings, and the last-swept arm views with
    /// confidence radii.
    fn render_doc(&self, slot: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"slot\":{slot},\"shards\":[");
        for (shard, a) in self.regret.iter().enumerate() {
            if shard > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{shard},\"regret\":{},\"cum_reward\":{},\"oracle\":{},\
                 \"steps\":{},\"drift_suspected\":{},\"arms\":[",
                json_f64(a.regret()),
                json_f64(a.cumulative_reward()),
                json_f64(a.oracle_total()),
                a.steps(),
                self.gauges[shard].drift_total.get(),
            );
            for (i, arm) in self.last_arms[shard].iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let radius = (arm.ucb - arm.lcb) / 2.0;
                let _ = write!(
                    out,
                    "{{\"arm\":{},\"value\":{},\"mean\":{},\"radius\":{},\"pulls\":{},\
                     \"active\":{}}}",
                    arm.arm,
                    json_f64(arm.value),
                    json_f64(arm.mean),
                    json_f64(radius.max(0.0)),
                    arm.pulls,
                    arm.active,
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }
}

/// Driver-side observability state: one per [`crate::serve`] call. Owns
/// every metric handle (so the hot path never takes the registry lock),
/// the per-shard worker trace rings, and the recovery-latency samples
/// behind the snapshot percentiles.
pub(crate) struct ObsState {
    hub: Option<Arc<ObsHub>>,
    registry: Arc<Registry>,
    restarts: Vec<Arc<Counter>>,
    checkpoints: Vec<Arc<Counter>>,
    replayed: Vec<Arc<Counter>>,
    degraded: Vec<Arc<Counter>>,
    recovery_total: Arc<Counter>,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    spilled: Arc<Counter>,
    shed_while_down: Arc<Counter>,
    journal_dropped: Arc<Counter>,
    completed: Vec<Arc<Counter>>,
    expired: Vec<Arc<Counter>>,
    aborted: Vec<Arc<Counter>>,
    backlog: Vec<Arc<Gauge>>,
    slot: Arc<Gauge>,
    latency: Vec<Arc<Histogram>>,
    step: Vec<Arc<Histogram>>,
    bandit: Vec<BanditGauges>,
    place_hits: Arc<Counter>,
    place_misses: Arc<Counter>,
    place_evictions: Arc<Counter>,
    install_latency: Arc<Histogram>,
    disk_corrupt_records: Arc<Counter>,
    disk_salvaged_bytes: Arc<Counter>,
    disk_fallbacks: Arc<Counter>,
    disk_retries: Arc<Counter>,
    checkpoint_bytes: Arc<Counter>,
    moved_state_bytes: Arc<Counter>,
    /// Per-BS cache occupancy gauges, grown lazily to the fleet size.
    occupancy: Vec<Arc<Gauge>>,
    rings: Vec<Option<TraceRing>>,
    /// Per-shard lifecycle rings (present only with a lifecycle sink).
    life_rings: Vec<Option<LifecycleRing>>,
    /// Per-shard holdback of worker trace events whose slot is past the
    /// fold watermark: a run-ahead worker may ring events for slots the
    /// coordinator has not folded yet, and emitting them early would make
    /// the trace depend on wall-clock scheduling. Drained in slot order
    /// as the watermark advances.
    held_events: Vec<std::collections::VecDeque<TraceEvent>>,
    /// Same holdback for worker lifecycle records.
    held_life: Vec<std::collections::VecDeque<LifecycleRecord>>,
    /// Per-shard work/mailbox/watermark stall probes (always on, like
    /// the registry).
    stall: Vec<StallProbe>,
    /// Fine-grained (log-linear) all-shard latency histogram; carries
    /// the request-id exemplars when lifecycle tracking is active.
    latency_fine: Arc<Histogram>,
    /// Per-spec SLO gauges (value, burn fast/slow, breached), built on
    /// the first `note_slo` call.
    slo_gauges: Vec<[Arc<Gauge>; 4]>,
    /// Driver phase totals: wall, dispatch, recovery, barrier (ms).
    driver_stall: [Arc<Gauge>; 4],
    telemetry_every: u64,
    /// Outage length of every successful restart, in slots (feeds the
    /// snapshot's recovery percentiles; driver-local, reset per run).
    recovery_samples: Vec<u64>,
    /// Last-seen active-arm bitmap per shard, for elimination diffing.
    prev_active: Vec<Option<Vec<bool>>>,
    /// Learning plane — regret, drift, flight recorder. `None` unless
    /// the hub requested the learner probe.
    learn: Option<LearnPlane>,
}

impl EventSink for ObsState {
    fn record(&self, event: TraceEvent) {
        if let Some(hub) = &self.hub {
            hub.write_event(&event);
        }
    }
}

impl LifecycleSink for ObsState {
    /// Driver-side lifecycle records go straight to the hub's sink —
    /// the driver runs between barriers, so its records are already
    /// deterministically ordered relative to the worker-ring drains.
    fn life(&self, record: LifecycleRecord) {
        if let Some(hub) = &self.hub {
            hub.write_life(&record);
        }
    }
}

/// The exact quantile formula [`crate::LatencyStats`] uses, over integer
/// slot samples: `sorted[round(frac * (n - 1))]`.
fn slot_quantiles(samples: &[u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let q = |frac: f64| sorted[((frac * (n - 1) as f64).round()) as usize];
    (q(0.50), q(0.95), sorted[n - 1])
}

impl ObsState {
    pub(crate) fn new(shards: usize, hub: Option<Arc<ObsHub>>) -> Self {
        let registry = hub
            .as_ref()
            .map_or_else(|| Arc::new(Registry::new()), |h| Arc::clone(h.registry()));
        let telemetry_every = hub.as_ref().map_or(0, |h| h.telemetry_every);
        let tracing = hub.as_ref().is_some_and(|h| h.has_trace());
        let lifecycle =
            cfg!(feature = "lifecycle") && hub.as_ref().is_some_and(|h| h.has_lifecycle());
        let fine_bounds = mec_obs::log_linear_bounds(1.0, 100_000.0, 9);
        let r = &registry;
        let per_shard = |name: &str, help: &str| -> Vec<Arc<Counter>> {
            (0..shards)
                .map(|s| r.counter(name, help, &[("shard", &s.to_string())]))
                .collect()
        };
        let bandit = (0..shards)
            .map(|s| {
                let l: &[(&str, &str)] = &[("shard", &s.to_string())];
                BanditGauges {
                    threshold_mhz: r.gauge(
                        "mec_bandit_threshold_mhz",
                        "learner's current best threshold estimate",
                        l,
                    ),
                    active_arms: r.gauge("mec_bandit_active_arms", "non-eliminated arms", l),
                    regret_proxy: r.gauge(
                        "mec_bandit_regret_proxy",
                        "running regret vs the empirical-best arm",
                        l,
                    ),
                    total_pulls: r.gauge("mec_bandit_total_pulls", "learner updates so far", l),
                    per_arm: Vec::new(),
                }
            })
            .collect();
        Self {
            restarts: per_shard("mec_serve_restarts_total", "shard worker restarts"),
            checkpoints: per_shard("mec_serve_checkpoints_total", "engine checkpoints adopted"),
            replayed: per_shard(
                "mec_serve_replayed_arrivals_total",
                "journal entries replayed during recovery",
            ),
            degraded: per_shard(
                "mec_serve_degraded_slots_total",
                "barriered slots a shard missed",
            ),
            recovery_total: r.counter(
                "mec_serve_recovery_latency_slots_total",
                "summed outage length across restarts",
                &[],
            ),
            admitted: r.counter("mec_serve_admitted_total", "requests admitted", &[]),
            shed: r.counter("mec_serve_shed_total", "requests shed", &[]),
            spilled: r.counter(
                "mec_serve_spilled_total",
                "requests rerouted while their home shard was down",
                &[],
            ),
            shed_while_down: r.counter(
                "mec_serve_shed_while_down_total",
                "requests shed because their shard was down",
                &[],
            ),
            journal_dropped: r.counter(
                "mec_serve_journal_dropped_total",
                "journal entries evicted by the cap",
                &[],
            ),
            completed: per_shard("mec_serve_completed_total", "requests completed"),
            expired: per_shard("mec_serve_expired_total", "requests expired unserved"),
            aborted: per_shard("mec_serve_aborted_total", "streams aborted"),
            backlog: (0..shards)
                .map(|s| {
                    r.gauge(
                        "mec_serve_backlog",
                        "waiting + running jobs",
                        &[("shard", &s.to_string())],
                    )
                })
                .collect(),
            slot: r.gauge("mec_serve_slot", "virtual slots executed", &[]),
            latency: (0..shards)
                .map(|s| {
                    r.histogram(
                        "mec_serve_latency_ms",
                        "served-request response latency",
                        &[("shard", &s.to_string())],
                        LATENCY_MS_BOUNDS,
                    )
                })
                .collect(),
            step: (0..shards)
                .map(|s| {
                    r.histogram(
                        "mec_serve_step_ms",
                        "wall-clock engine step time (live only, never snapshotted)",
                        &[("shard", &s.to_string())],
                        STEP_MS_BOUNDS,
                    )
                })
                .collect(),
            bandit,
            place_hits: r.counter(
                "mec_placement_cache_hits_total",
                "arrivals whose home station held their service",
                &[],
            ),
            place_misses: r.counter(
                "mec_placement_cache_misses_total",
                "arrivals whose home station lacked their service",
                &[],
            ),
            place_evictions: r.counter(
                "mec_placement_evictions_total",
                "residents evicted to make room for installs",
                &[],
            ),
            install_latency: r.histogram(
                "mec_placement_install_latency_slots",
                "slots from install decision to residency",
                &[],
                INSTALL_SLOT_BOUNDS,
            ),
            disk_corrupt_records: r.counter(
                "mec_serve_recovery_corrupt_records_total",
                "CRC-failed journal/checkpoint records detected on disk",
                &[],
            ),
            disk_salvaged_bytes: r.counter(
                "mec_serve_recovery_salvaged_bytes_total",
                "bytes truncated away while salvaging torn journal tails",
                &[],
            ),
            disk_fallbacks: r.counter(
                "mec_serve_recovery_disk_fallbacks_total",
                "recoveries that distrusted disk and fell back to memory",
                &[],
            ),
            disk_retries: r.counter(
                "mec_serve_recovery_disk_retries_total",
                "disk read retries and write errors absorbed during recovery",
                &[],
            ),
            checkpoint_bytes: r.counter(
                "mec_serve_recovery_checkpoint_bytes_total",
                "framed bytes written across all checkpoint mirrors",
                &[],
            ),
            moved_state_bytes: r.counter(
                "mec_serve_recovery_moved_state_bytes_total",
                "encoded station-slice bytes shipped by drain/leave handoffs",
                &[],
            ),
            occupancy: Vec::new(),
            rings: (0..shards)
                .map(|_| tracing.then(|| TraceRing::with_capacity(RING_CAP)))
                .collect(),
            life_rings: (0..shards)
                .map(|_| lifecycle.then(|| LifecycleRing::with_capacity(LIFE_RING_CAP)))
                .collect(),
            held_events: (0..shards)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            held_life: (0..shards)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            stall: (0..shards)
                .map(|s| {
                    let l: &[(&str, &str)] = &[("shard", &s.to_string())];
                    StallProbe {
                        work_ms: r.gauge(
                            "mec_serve_work_ms_total",
                            "cumulative wall-clock ms executing leased slots (live only)",
                            l,
                        ),
                        mailbox_ms: r.gauge(
                            "mec_serve_mailbox_wait_ms_total",
                            "cumulative wall-clock ms handling mailbox traffic (live only)",
                            l,
                        ),
                        watermark_ms: r.gauge(
                            "mec_serve_watermark_wait_ms_total",
                            "cumulative wall-clock ms blocked awaiting a lease (live only)",
                            l,
                        ),
                        wait_hist: r.histogram(
                            "mec_serve_watermark_wait_ms",
                            "per-grant wall-clock wait for the watermark (live only)",
                            l,
                            STEP_MS_BOUNDS,
                        ),
                    }
                })
                .collect(),
            latency_fine: r.histogram(
                "mec_serve_latency_fine_ms",
                "all-shard response latency on log-linear buckets",
                &[],
                &fine_bounds,
            ),
            slo_gauges: Vec::new(),
            driver_stall: [
                ("mec_serve_driver_wall_ms_total", "serve-loop wall time"),
                ("mec_serve_driver_dispatch_ms_total", "arrival dispatch"),
                ("mec_serve_driver_recovery_ms_total", "fault recovery"),
                ("mec_serve_driver_fold_ms_total", "watermark folds"),
            ]
            .map(|(name, what)| {
                r.gauge(
                    name,
                    &format!("cumulative ms the driver spent on {what}"),
                    &[],
                )
            }),
            telemetry_every,
            recovery_samples: Vec::new(),
            prev_active: vec![None; shards],
            learn: hub
                .as_ref()
                .is_some_and(|h| h.probe())
                .then(|| LearnPlane::new(shards, r)),
            registry,
            hub,
        }
    }

    /// Whether the learner probe should be attached to shard policies.
    pub(crate) fn probe(&self) -> bool {
        self.learn.is_some()
    }

    /// The worker trace ring for `shard` (shared across restarts, so a
    /// replacement worker writes into the same stream).
    pub(crate) fn ring(&self, shard: usize) -> Option<TraceRing> {
        self.rings[shard].clone()
    }

    /// The worker's wall-clock step-timing histogram for `shard`.
    pub(crate) fn step_hist(&self, shard: usize) -> Option<Arc<Histogram>> {
        Some(Arc::clone(&self.step[shard]))
    }

    /// The worker lifecycle ring for `shard` (shared across restarts,
    /// like the trace ring). `None` when no lifecycle sink is attached.
    pub(crate) fn life_ring(&self, shard: usize) -> Option<LifecycleRing> {
        self.life_rings[shard].clone()
    }

    /// The worker's stall probe for `shard`.
    pub(crate) fn stall_probe(&self, shard: usize) -> StallProbe {
        self.stall[shard].clone()
    }

    /// The fine-grained latency histogram (for worker-side exemplars).
    pub(crate) fn latency_fine(&self) -> Arc<Histogram> {
        Arc::clone(&self.latency_fine)
    }

    /// Whether run-end stall events were requested on the hub.
    pub(crate) fn stall_events(&self) -> bool {
        self.hub.as_ref().is_some_and(|h| h.stall_events())
    }

    pub(crate) fn telemetry_every(&self) -> u64 {
        self.telemetry_every
    }

    /// Folds one tick reply into metrics and (with the `obs` feature)
    /// the trace: backlog gauge, per-sample latency, cumulative shard
    /// counters, checkpoint count, and the learner-telemetry sweep.
    pub(crate) fn note_tick(&mut self, tick: &ShardTick) {
        let shard = tick.shard;
        let slot = tick.report.slot;
        self.backlog[shard].set(tick.backlog as f64);
        self.completed[shard].store(tick.completed as u64);
        self.expired[shard].store(tick.expired as u64);
        self.aborted[shard].store(tick.aborted as u64);
        for &lat in &tick.new_latencies {
            self.latency[shard].observe(lat);
            self.latency_fine.observe(lat);
            mec_obs::event!(self, slot, "served", shard = shard, lat_ms = lat);
        }
        if tick.checkpoint.is_some() {
            self.checkpoints[shard].inc();
            mec_obs::event!(
                self,
                slot,
                "checkpoint",
                shard = shard,
                next_slot = slot + 1
            );
        }
        if let Some(telemetry) = &tick.telemetry {
            self.note_telemetry(slot, shard, telemetry);
            self.note_learn_sweep(slot, shard, telemetry);
        }
        self.note_learner(tick);
    }

    /// Folds one probed tick into the learning plane: `arm_lifecycle`
    /// trace events, regret accounting against the per-step oracle,
    /// per-arm Page–Hinkley drift detection (with a flight dump on
    /// firing), decision-ring capture, and LP solve timings. No-op
    /// while the probe is detached.
    fn note_learner(&mut self, tick: &ShardTick) {
        let Some(mut learn) = self.learn.take() else {
            return;
        };
        let shard = tick.shard;
        let slot = tick.report.slot;
        let mut drift_fired = false;
        for ev in &tick.learner_events {
            mec_obs::event!(
                self,
                slot,
                "arm_lifecycle",
                shard = shard,
                arm = ev.arm,
                event = ev.kind,
                pulls = ev.pulls,
                mean = ev.mean,
                radius = ev.radius,
                value_mhz = ev.value,
            );
            let (Some(reward), Some(oracle)) = (ev.reward, ev.oracle) else {
                continue;
            };
            learn.regret[shard].record(reward, oracle);
            let arms = &mut learn.drift[shard];
            while arms.len() <= ev.arm {
                arms.push(ArmDrift {
                    ph: PageHinkley::default(),
                    suspected: false,
                });
            }
            let d = &mut arms[ev.arm];
            // The detector resets when it fires, so snapshot the
            // statistic the event should carry before feeding it.
            let (pre_mean, pre_score) = (d.ph.mean(), d.ph.score());
            if d.ph.observe(reward) {
                d.suspected = true;
                drift_fired = true;
                learn.gauges[shard].drift_total.inc();
                mec_obs::event!(
                    self,
                    slot,
                    "drift_suspected",
                    shard = shard,
                    arm = ev.arm,
                    mean = pre_mean,
                    score = pre_score,
                );
            } else if d.suspected && d.ph.samples() >= mec_obs::drift::DEFAULT_MIN_SAMPLES {
                // A warm-up's worth of fresh evidence without re-firing:
                // the stream looks stationary again.
                d.suspected = false;
                mec_obs::event!(
                    self,
                    slot,
                    "drift_cleared",
                    shard = shard,
                    arm = ev.arm,
                    mean = d.ph.mean(),
                    score = d.ph.score(),
                );
            }
        }
        if tick.probe_dropped > learn.probe_dropped[shard] {
            learn
                .probe_drop_counter
                .add(tick.probe_dropped - learn.probe_dropped[shard]);
            learn.probe_dropped[shard] = tick.probe_dropped;
        }
        if let Some(d) = &tick.decision {
            let lp = &learn.lp_last[shard];
            learn.recorder.record(DecisionSnapshot {
                shard,
                slot: d.slot,
                arm: d.arm,
                value: d.value,
                active_arms: d.active_arms,
                best_arm: d.best_arm,
                best_mean: d.best_mean,
                granted: d.granted,
                granted_mhz: d.granted_mhz,
                assign_digest: d.assign_digest,
                lp_solves: lp.solves,
                lp_warm_hits: lp.warm_hits,
                lp_pivots: lp.pivots,
            });
        }
        for &ms in &tick.solve_times_ms {
            learn.solve_ms.observe(ms);
        }
        let a = &learn.regret[shard];
        let g = &learn.gauges[shard];
        g.regret.set(a.regret());
        g.cum_reward.set(a.cumulative_reward());
        g.oracle.set(a.oracle_total());
        g.steps.set(a.steps() as f64);
        self.learn = Some(learn);
        if drift_fired {
            self.dump_flight(FlightTrigger::Drift, slot);
        }
    }

    /// Learner-sweep bookkeeping while the probe is attached: caches
    /// the arm views behind `/learning.json`, mirrors the solver
    /// counters, and emits the `learning_state` / `lp_state` events.
    fn note_learn_sweep(&mut self, slot: u64, shard: usize, t: &mec_sim::PolicyTelemetry) {
        let Some(mut learn) = self.learn.take() else {
            return;
        };
        learn.last_arms[shard] = t.arms.clone();
        {
            let a = &learn.regret[shard];
            mec_obs::event!(
                self,
                slot,
                "learning_state",
                shard = shard,
                cum_reward = a.cumulative_reward(),
                oracle = a.oracle_total(),
                regret = a.regret(),
                steps = a.steps(),
            );
        }
        if let Some(s) = &t.solver {
            learn.lp_last[shard] = *s;
            let lp = learn.lp[shard].get_or_insert_with(|| {
                let l: &[(&str, &str)] = &[("shard", &shard.to_string())];
                let g = |name: &str, help: &str| self.registry.gauge(name, help, l);
                LpGauges {
                    solves: g("mec_slotlp_solves_total", "slot-LPs solved"),
                    warm_hits: g(
                        "mec_slotlp_warm_hits_total",
                        "warm-started solves that converged from the reused basis",
                    ),
                    warm_fallbacks: g(
                        "mec_slotlp_warm_fallbacks_total",
                        "warm starts that fell back to a cold solve",
                    ),
                    cold_starts: g(
                        "mec_slotlp_cold_starts_total",
                        "solves with no warm basis available",
                    ),
                    pivots: g(
                        "mec_slotlp_pivots_total",
                        "simplex pivots across all solves",
                    ),
                    refactorizations: g(
                        "mec_slotlp_refactorizations_total",
                        "basis refactorizations across all solves",
                    ),
                }
            });
            lp.solves.set(s.solves as f64);
            lp.warm_hits.set(s.warm_hits as f64);
            lp.warm_fallbacks.set(s.warm_fallbacks as f64);
            lp.cold_starts.set(s.cold_starts as f64);
            lp.pivots.set(s.pivots as f64);
            lp.refactorizations.set(s.refactorizations as f64);
            mec_obs::event!(
                self,
                slot,
                "lp_state",
                shard = shard,
                solves = s.solves,
                warm_hits = s.warm_hits,
                warm_fallbacks = s.warm_fallbacks,
                cold_starts = s.cold_starts,
                pivots = s.pivots,
                refactorizations = s.refactorizations,
            );
        }
        let doc = learn.render_doc(slot);
        if let Some(hub) = &self.hub {
            *hub.learning_doc
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = doc;
            if learn.doc_slot != slot {
                learn.doc_slot = slot;
                *hub.flight_doc
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) =
                    learn.recorder.render_jsonl();
            }
        }
        self.learn = Some(learn);
    }

    /// Dumps the flight recorder's decision rings for `trigger` at
    /// `slot`, when the trigger is enabled and a flight sink is
    /// attached. The dump flushes immediately — dumps fire on faults,
    /// and the run-end flush may never come.
    pub(crate) fn dump_flight(&mut self, trigger: FlightTrigger, slot: u64) {
        let Some(hub) = &self.hub else {
            return;
        };
        if !hub.has_flight() || !hub.flight_triggers().contains(trigger) {
            return;
        }
        let Some(learn) = &mut self.learn else {
            return;
        };
        let events = learn.recorder.dump_events(trigger, slot);
        for event in &events {
            hub.write_flight(event);
        }
        if !events.is_empty() {
            hub.flush_flight();
        }
    }

    /// Publishes one learner-telemetry sweep: shard gauges, per-arm
    /// series, `arm_state` events, and `arm_eliminated` events for every
    /// arm that left the active set since the previous sweep.
    fn note_telemetry(&mut self, slot: u64, shard: usize, t: &mec_sim::PolicyTelemetry) {
        let g = &mut self.bandit[shard];
        g.threshold_mhz.set(t.best_value);
        g.active_arms.set(t.active_arms() as f64);
        g.regret_proxy.set(t.regret_proxy);
        g.total_pulls.set(t.total_pulls as f64);
        while g.per_arm.len() < t.arms.len() {
            let arm = g.per_arm.len();
            let labels: &[(&str, &str)] =
                &[("shard", &shard.to_string()), ("arm", &arm.to_string())];
            g.per_arm.push(ArmGauges {
                pulls: self.registry.counter(
                    "mec_bandit_arm_pulls",
                    "times the arm was pulled",
                    labels,
                ),
                mean: self
                    .registry
                    .gauge("mec_bandit_arm_mean", "empirical mean reward", labels),
                ucb: self
                    .registry
                    .gauge("mec_bandit_arm_ucb", "upper confidence bound", labels),
                lcb: self
                    .registry
                    .gauge("mec_bandit_arm_lcb", "lower confidence bound", labels),
                active: self.registry.gauge(
                    "mec_bandit_arm_active",
                    "1 while the arm is in the active set",
                    labels,
                ),
            });
        }
        for (arm, view) in t.arms.iter().enumerate() {
            let h = &g.per_arm[arm];
            h.pulls.store(view.pulls);
            h.mean.set(view.mean);
            h.ucb.set(view.ucb);
            h.lcb.set(view.lcb);
            h.active.set(f64::from(u8::from(view.active)));
        }
        let active: Vec<bool> = t.arms.iter().map(|a| a.active).collect();
        let active_left = active.iter().filter(|&&a| a).count() as u64;
        if let Some(prev) = &self.prev_active[shard] {
            for (arm, view) in t.arms.iter().enumerate() {
                if prev.get(arm).copied().unwrap_or(true) && !view.active {
                    mec_obs::event!(
                        self,
                        slot,
                        "arm_eliminated",
                        shard = shard,
                        arm = arm,
                        value_mhz = view.value,
                        active_left = active_left,
                    );
                }
            }
        }
        self.prev_active[shard] = Some(active);
        for (arm, view) in t.arms.iter().enumerate() {
            mec_obs::event!(
                self,
                slot,
                "arm_state",
                shard = shard,
                arm = arm,
                value_mhz = view.value,
                pulls = view.pulls,
                mean = view.mean,
                ucb = view.ucb,
                lcb = view.lcb,
                active = view.active,
            );
        }
    }

    /// Records a shard-failure detection (`reason` is `disconnect`,
    /// `timeout`, or `send_failed`) and dumps the flight recorder —
    /// the decisions leading up to a crash are exactly what it's for.
    pub(crate) fn note_detection(&mut self, slot: u64, shard: usize, reason: &str) {
        mec_obs::event!(self, slot, "fault_detected", shard = shard, reason = reason);
        self.dump_flight(FlightTrigger::Crash, slot);
    }

    /// Counts one restart attempt (successful or not).
    pub(crate) fn note_restart_attempt(&self, shard: usize) {
        self.restarts[shard].inc();
    }

    /// Records a successful restart: replayed-arrival and outage-length
    /// counters, the percentile sample, and the `restart` event.
    pub(crate) fn note_restart_ok(&mut self, slot: u64, shard: usize, replayed: u64, outage: u64) {
        self.replayed[shard].add(replayed);
        self.recovery_total.add(outage);
        self.recovery_samples.push(outage);
        mec_obs::event!(
            self,
            slot,
            "restart",
            shard = shard,
            replayed = replayed,
            latency_slots = outage,
            ok = true,
        );
    }

    /// Records a restart whose replacement worker died before reporting.
    pub(crate) fn note_restart_failed(&self, slot: u64, shard: usize) {
        mec_obs::event!(
            self,
            slot,
            "restart",
            shard = shard,
            replayed = 0u64,
            latency_slots = 0u64,
            ok = false,
        );
    }

    /// Counts one shard-slot spent unavailable.
    pub(crate) fn note_degraded(&self, shard: usize) {
        self.degraded[shard].inc();
    }

    /// Publishes the per-slot admission funnel (skipped when nothing was
    /// dispatched this slot, to keep traces proportional to activity).
    #[allow(clippy::similar_names, clippy::too_many_arguments)]
    pub(crate) fn note_admission(
        &self,
        slot: u64,
        injected: u64,
        buffered: u64,
        spilled: u64,
        shed: u64,
        shed_down: u64,
        held: u64,
    ) {
        if injected + buffered + spilled + shed + shed_down + held == 0 {
            return;
        }
        mec_obs::event!(
            self,
            slot,
            "admission",
            admitted = injected,
            buffered = buffered,
            spilled = spilled,
            shed = shed,
            shed_down = shed_down,
            held = held,
        );
    }

    /// Updates the slot gauge at the end of a barrier.
    pub(crate) fn set_slot(&self, slot: u64) {
        self.slot.set(slot as f64);
    }

    /// Publishes one slot's placement routing delta (cache counters plus
    /// the `placement` trace event; skipped when nothing happened).
    pub(crate) fn note_placement(&self, slot: u64, delta: &PlacementStats) {
        if delta.is_quiet() {
            return;
        }
        self.place_hits.add(delta.hits);
        self.place_misses.add(delta.misses);
        self.place_evictions.add(delta.evictions);
        mec_obs::event!(
            self,
            slot,
            "placement",
            hits = delta.hits,
            misses = delta.misses,
            redirects = delta.redirects,
            rehomed = delta.rehomed,
            held = delta.held,
            shed = delta.placement_shed,
        );
    }

    /// Records a completed service install: the latency histogram and
    /// the `install` event.
    pub(crate) fn note_install_done(&self, slot: u64, done: &InstallDone) {
        self.install_latency.observe(done.latency as f64);
        mec_obs::event!(
            self,
            slot,
            "install",
            station = done.station,
            service = done.service.0,
            warm = done.warm,
            latency_slots = done.latency,
        );
    }

    /// Records a membership op the moment it applies.
    pub(crate) fn note_reconfig(&self, slot: u64, op: &ReconfigOp) {
        let kind = match op {
            ReconfigOp::BsJoin { .. } => "join",
            ReconfigOp::BsLeave { .. } => "leave",
            ReconfigOp::BsDrain { .. } => "drain",
        };
        mec_obs::event!(self, slot, "reconfig", op = kind, station = op.station());
    }

    /// Records a drain/leave handoff: which station left, who took its
    /// extracted in-flight slice, and how much state moved (jobs and
    /// encoded bytes — the per-handoff cost the recovery report plots).
    pub(crate) fn note_handoff(
        &self,
        slot: u64,
        station: usize,
        takeover: Option<usize>,
        migrated: u64,
        bytes: u64,
        leave: bool,
    ) {
        self.moved_state_bytes.add(bytes);
        mec_obs::event!(
            self,
            slot,
            "handoff",
            station = station,
            takeover = takeover.map_or(-1i64, |t| t as i64),
            migrated = migrated,
            bytes = bytes,
            leave = leave,
        );
    }

    /// Folds one shard's disk-recovery incident tally into the recovery
    /// counters and emits a `journal_salvage` event (skipped when the
    /// read-back was clean).
    pub(crate) fn note_disk_incidents(&self, slot: u64, shard: usize, inc: &DiskIncidents) {
        if inc.is_clean() {
            return;
        }
        self.disk_corrupt_records.add(inc.corrupt_records);
        self.disk_salvaged_bytes.add(inc.salvaged_bytes);
        self.disk_retries.add(inc.retries);
        self.disk_fallbacks.add(inc.checkpoint_fallbacks);
        mec_obs::event!(
            self,
            slot,
            "journal_salvage",
            shard = shard,
            corrupt_records = inc.corrupt_records,
            salvaged_bytes = inc.salvaged_bytes,
            retries = inc.retries,
            checkpoint_fallbacks = inc.checkpoint_fallbacks,
        );
    }

    /// Records a recovery that distrusted the disk mirror (read-back did
    /// not byte-match memory) and healed it from the in-memory truth.
    pub(crate) fn note_disk_fallback(&self, slot: u64, shard: usize) {
        self.disk_fallbacks.inc();
        mec_obs::event!(self, slot, "disk_fallback", shard = shard);
    }

    /// Records a checkpoint mirrored to disk and its framed byte size.
    pub(crate) fn note_checkpoint_write(&self, slot: u64, shard: usize, bytes: u64) {
        self.checkpoint_bytes.add(bytes);
        mec_obs::event!(self, slot, "checkpoint_write", shard = shard, bytes = bytes);
    }

    /// Records a disk write error absorbed without aborting the run
    /// (`op` is `append`, `checkpoint`, `prune`, `heal`, `flush`, or
    /// `fault`; `shard == usize::MAX` marks a store-wide operation).
    pub(crate) fn note_disk_write_error(
        &self,
        slot: u64,
        shard: usize,
        op: &str,
        e: &std::io::Error,
    ) {
        self.disk_retries.inc();
        let shard_id = if shard == usize::MAX {
            -1i64
        } else {
            shard as i64
        };
        mec_obs::event!(
            self,
            slot,
            "disk_error",
            shard = shard_id,
            op = op,
            error = e.to_string(),
        );
    }

    /// Records an injected disk fault the moment it lands on the store.
    pub(crate) fn note_disk_fault(&self, slot: u64, fault: &DiskFaultSpec, bytes: u64) {
        let target = match fault.target {
            DiskTarget::Journal => "journal",
            DiskTarget::Checkpoint => "ckpt",
        };
        let kind = match fault.kind {
            DiskFaultKind::Truncate { .. } => "truncate",
            DiskFaultKind::Corrupt { .. } => "corrupt",
            DiskFaultKind::SlowDisk { .. } => "slowdisk",
        };
        mec_obs::event!(
            self,
            slot,
            "disk_fault",
            shard = fault.shard,
            target = target,
            fault = kind,
            bytes = bytes,
        );
    }

    /// Mirrors per-BS cache occupancy into the registry, growing the
    /// gauge set to the fleet size on first call.
    pub(crate) fn sync_placement(&mut self, state: &PlacementState) {
        while self.occupancy.len() < state.stations() {
            let bs = self.occupancy.len();
            self.occupancy.push(self.registry.gauge(
                "mec_placement_bs_occupancy",
                "storage units used (residents + reservations)",
                &[("bs", &bs.to_string())],
            ));
        }
        for st in 0..state.stations() {
            self.occupancy[st].set(f64::from(state.occupancy(st)));
        }
    }

    /// Mirrors the router-owned totals into the registry.
    pub(crate) fn sync_router(&self, router: &Router) {
        self.admitted.store(router.admitted());
        self.shed.store(router.shed());
        self.spilled.store(router.spilled());
        self.shed_while_down.store(router.shed_while_down());
        self.journal_dropped.store(router.journal_dropped());
    }

    /// Drains worker rings into the trace, in shard order, emitting only
    /// records stamped at or below the fold watermark `through`. Called
    /// once per watermark fold so worker events interleave
    /// deterministically with driver events even when workers run ahead
    /// of the fold: records past the watermark are held back (worker
    /// streams are slot-nondecreasing) and emitted by a later fold.
    /// Lifecycle rings drain the same way into the lifecycle sink. The
    /// run-end drain passes `u64::MAX` to flush every holdback.
    pub(crate) fn drain_rings_through(&mut self, through: u64) {
        for (shard, ring) in self.rings.iter().enumerate() {
            if let Some(ring) = ring {
                self.held_events[shard].extend(ring.drain());
            }
            while self.held_events[shard]
                .front()
                .is_some_and(|e| e.slot <= through)
            {
                let event = self.held_events[shard].pop_front().expect("checked front");
                if let Some(hub) = &self.hub {
                    hub.write_event(&event);
                }
            }
        }
        for (shard, ring) in self.life_rings.iter().enumerate() {
            if let Some(ring) = ring {
                self.held_life[shard].extend(ring.drain());
            }
            while self.held_life[shard]
                .front()
                .is_some_and(|r| r.slot <= through)
            {
                let record = self.held_life[shard].pop_front().expect("checked front");
                if let Some(hub) = &self.hub {
                    hub.write_life(&record);
                }
            }
        }
    }

    /// Publishes one slot's SLO evaluation: per-spec gauges, breach /
    /// recovery trace events, and the live `/slo.json` document.
    pub(crate) fn note_slo(
        &mut self,
        slot: u64,
        engine: &SloEngine,
        transitions: &[SloTransition],
    ) {
        if engine.is_empty() {
            return;
        }
        if self.slo_gauges.is_empty() {
            for spec in engine.specs() {
                let l: &[(&str, &str)] = &[("slo", spec.label())];
                self.slo_gauges.push([
                    self.registry
                        .gauge("mec_slo_value", "windowed SLI value", l),
                    self.registry.gauge(
                        "mec_slo_burn_fast",
                        "fast-window error-budget burn rate",
                        l,
                    ),
                    self.registry.gauge(
                        "mec_slo_burn_slow",
                        "slow-window error-budget burn rate",
                        l,
                    ),
                    self.registry
                        .gauge("mec_slo_breached", "1 while the SLO is in breach", l),
                ]);
            }
        }
        for (i, gauges) in self.slo_gauges.iter().enumerate() {
            let status = engine.status(i);
            gauges[0].set(status.value);
            gauges[1].set(status.burn_fast);
            gauges[2].set(status.burn_slow);
            gauges[3].set(f64::from(u8::from(status.breached)));
        }
        for t in transitions {
            let spec = engine.specs()[t.index].label();
            let kind = if t.breached {
                "slo_breach"
            } else {
                "slo_recovered"
            };
            mec_obs::event!(
                self,
                slot,
                kind,
                slo = spec,
                value = t.value,
                burn_fast = t.burn_fast,
                burn_slow = t.burn_slow,
            );
        }
        if let Some(hub) = &self.hub {
            *hub.slo_doc
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = engine.render_json(slot);
        }
        if transitions.iter().any(|t| t.breached) {
            self.dump_flight(FlightTrigger::Slo, slot);
        }
    }

    /// Mirrors the driver's cumulative phase split into the registry.
    pub(crate) fn note_driver_stall(
        &self,
        wall_ms: f64,
        dispatch_ms: f64,
        recovery_ms: f64,
        fold_ms: f64,
    ) {
        for (gauge, v) in self
            .driver_stall
            .iter()
            .zip([wall_ms, dispatch_ms, recovery_ms, fold_ms])
        {
            gauge.set(v);
        }
    }

    /// Emits the run-end `stall_shard` / `stall_driver` trace events.
    /// Only called when the hub opted in with `--stall-events`: the
    /// payloads are wall-clock measurements, which would break trace
    /// byte-identity across same-seed runs.
    pub(crate) fn note_stall_summary(
        &self,
        slot: u64,
        wall_ms: f64,
        dispatch_ms: f64,
        recovery_ms: f64,
        fold_ms: f64,
        slots: u64,
    ) {
        for (shard, probe) in self.stall.iter().enumerate() {
            mec_obs::event!(
                self,
                slot,
                "stall_shard",
                shard = shard,
                work_ms = probe.work_ms.get(),
                mailbox_ms = probe.mailbox_ms.get(),
                watermark_ms = probe.watermark_ms.get(),
            );
        }
        mec_obs::event!(
            self,
            slot,
            "stall_driver",
            wall_ms = wall_ms,
            dispatch_ms = dispatch_ms,
            recovery_ms = recovery_ms,
            fold_ms = fold_ms,
            slots = slots,
        );
    }

    /// The snapshot-facing fault counters, sourced from the registry —
    /// the compatibility shim that keeps [`FaultStats`] byte-identical
    /// to the pre-registry implementation, plus the recovery-latency
    /// percentiles over this run's outage samples.
    pub(crate) fn fault_stats(&self) -> FaultStats {
        let sum = |v: &[Arc<Counter>]| v.iter().map(|c| c.get()).sum();
        let (p50, p95, max) = slot_quantiles(&self.recovery_samples);
        FaultStats {
            restarts: sum(&self.restarts),
            replayed_arrivals: sum(&self.replayed),
            spilled: self.spilled.get(),
            shed_while_down: self.shed_while_down.get(),
            degraded_slots: sum(&self.degraded),
            recovery_latency_slots: self.recovery_total.get(),
            checkpoints: sum(&self.checkpoints),
            journal_dropped: self.journal_dropped.get(),
            recovery_p50_slots: p50,
            recovery_p95_slots: p95,
            recovery_max_slots: max,
            disk_corrupt_records: self.disk_corrupt_records.get(),
            disk_salvaged_bytes: self.disk_salvaged_bytes.get(),
            disk_fallbacks: self.disk_fallbacks.get(),
            disk_retries: self.disk_retries.get(),
        }
    }

    /// Surfaces ring saturation, then flushes the hub's sinks. Trace
    /// and lifecycle drops are accounted separately — a saturated
    /// lifecycle ring means request journeys have gaps, which warrants
    /// its own counter and report warning. Drop counts are
    /// deterministic (ring capacity vs per-slot event volume), so the
    /// drop events keep byte-identity.
    pub(crate) fn flush(&self, slot: u64) {
        let dropped: u64 = self.rings.iter().flatten().map(TraceRing::dropped).sum();
        if dropped > 0 {
            self.registry
                .counter(
                    "mec_obs_trace_dropped_total",
                    "worker ring events lost to saturation",
                    &[],
                )
                .store(dropped);
            mec_obs::event!(self, slot, "trace_drops", count = dropped);
        }
        let life_dropped: u64 = self
            .life_rings
            .iter()
            .flatten()
            .map(LifecycleRing::dropped)
            .sum();
        if life_dropped > 0 {
            self.registry
                .counter(
                    "mec_obs_lifecycle_dropped_total",
                    "lifecycle ring records lost to saturation",
                    &[],
                )
                .store(life_dropped);
            mec_obs::event!(self, slot, "lifecycle_drops", count = life_dropped);
        }
        if let Some(learn) = &self.learn {
            let probe_dropped = learn.probe_drop_counter.get();
            if probe_dropped > 0 {
                mec_obs::event!(self, slot, "arm_lifecycle_drops", count = probe_dropped);
            }
        }
        if let Some(hub) = &self.hub {
            hub.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_quantiles_match_latency_stats_formula() {
        assert_eq!(slot_quantiles(&[]), (0, 0, 0));
        assert_eq!(slot_quantiles(&[12]), (12, 12, 12));
        let samples: Vec<u64> = (1..=100).collect();
        let (p50, p95, max) = slot_quantiles(&samples);
        assert_eq!(p50, 51); // round(0.5 * 99) = 50 -> sorted[50] = 51
        assert_eq!(p95, 95); // round(0.95 * 99) = 94 -> sorted[94] = 95
        assert_eq!(max, 100);
    }

    #[test]
    fn fresh_state_reports_quiet_faults() {
        let obs = ObsState::new(3, None);
        assert!(obs.fault_stats().is_quiet());
        assert!(obs.ring(0).is_none(), "no tracing without a hub");
        assert!(obs.step_hist(2).is_some());
    }

    #[test]
    fn restart_accounting_flows_into_fault_stats() {
        let mut obs = ObsState::new(2, None);
        obs.note_restart_attempt(1);
        obs.note_restart_ok(30, 1, 17, 12);
        obs.note_degraded(1);
        let stats = obs.fault_stats();
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.replayed_arrivals, 17);
        assert_eq!(stats.recovery_latency_slots, 12);
        assert_eq!(stats.degraded_slots, 1);
        assert_eq!(stats.recovery_p50_slots, 12);
        assert_eq!(stats.recovery_p95_slots, 12);
        assert_eq!(stats.recovery_max_slots, 12);
    }

    #[test]
    fn disk_incidents_flow_into_fault_stats() {
        let obs = ObsState::new(1, None);
        obs.note_disk_incidents(
            5,
            0,
            &DiskIncidents {
                corrupt_records: 2,
                salvaged_bytes: 64,
                retries: 3,
                checkpoint_fallbacks: 1,
            },
        );
        obs.note_disk_fallback(6, 0);
        let stats = obs.fault_stats();
        assert_eq!(stats.disk_corrupt_records, 2);
        assert_eq!(stats.disk_salvaged_bytes, 64);
        assert_eq!(stats.disk_retries, 3);
        assert_eq!(
            stats.disk_fallbacks, 2,
            "incident fallback + verify fallback"
        );
    }

    #[test]
    fn hub_with_trace_creates_worker_rings() {
        let hub = Arc::new(ObsHub::new().with_trace(TraceWriter::new(Box::new(Vec::new()))));
        let obs = ObsState::new(2, Some(hub));
        assert!(obs.ring(0).is_some());
        assert!(obs.ring(1).is_some());
    }
}
