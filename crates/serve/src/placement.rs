//! The serving plane's view of placement: placement-aware routing ahead
//! of shard admission, install latency charged against the slot budget,
//! and live `BsJoin`/`BsLeave`/`BsDrain` reconfiguration.
//!
//! [`PlacementPlane`] wraps a [`mec_placement::PlacementState`] with
//! everything the driver loop needs:
//!
//! * [`PlacementPlane::route`] runs *before* [`crate::Router::admit`]:
//!   an arrival whose home station is out of the fleet is rehomed to the
//!   nearest active station; a placement miss either redirects to the
//!   nearest active holder (when the round-trip still meets the
//!   deadline) or triggers an install and **holds** the request until
//!   the service is resident — a miss is an explicit decision, never a
//!   silent acceptance.
//! * Scheduled ops apply at the top of their slot
//!   ([`PlacementPlane::ops_due`]), and drain handoffs come due through
//!   [`PlacementPlane::drains_due`] — the runtime migrates the drained
//!   station's journaled in-flight state to the takeover station and
//!   rebuilds the affected shards by journal replay.
//!
//! Determinism: the plane's decisions read only seed-derived state
//! (catalog, caches), the slot index, and the topology's path table.
//! Held requests live in a `BTreeMap` keyed by release slot and are
//! released in arrival order, so same seed + same ops script reproduces
//! the identical admission stream.

use crate::snapshot::PlacementStats;
use mec_placement::{InstallOutcome, OpsLog, PlacementConfig, PlacementState, ReconfigOp};
use mec_topology::{PathTable, StationId, Topology};
use mec_workload::Request;
use std::collections::BTreeMap;

/// What the placement plane decided for one arrival.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteDecision {
    /// Hand the request to shard admission (possibly rehomed onto a
    /// station that is active and/or holds the service).
    Proceed(Request),
    /// An install is in flight; the request is parked in the plane and
    /// re-dispatched at `ready_at`.
    Held {
        /// Slot the request will be released at.
        ready_at: u64,
    },
    /// No active station can take the request (fleet empty, or the
    /// service is unplaceable and no holder exists). Count as shed.
    Shed,
}

/// Rewrites a request's home station, preserving everything else.
fn rehome(request: &Request, home: StationId) -> Request {
    Request::new(
        request.id(),
        home,
        request.arrival_slot(),
        request.duration_slots(),
        request.tasks().to_vec(),
        request.demand().clone(),
        request.deadline(),
    )
}

/// Driver-side placement state for one serving run.
pub struct PlacementPlane {
    state: PlacementState,
    paths: PathTable,
    /// Scheduled ops, normalized (slot-sorted, stable); `cursor` marks
    /// the first not-yet-applied op.
    ops: OpsLog,
    cursor: usize,
    /// Requests parked for an in-flight install, keyed by release slot.
    held: BTreeMap<u64, Vec<Request>>,
    stats: PlacementStats,
}

impl PlacementPlane {
    /// Builds the plane for `topo` from the placement config and the
    /// merged ops schedule (CLI script plus chaos ops). Stations whose
    /// first op is a join start outside the fleet.
    ///
    /// # Errors
    ///
    /// Returns a message when an op names a station the topology does
    /// not have.
    pub fn new(topo: &Topology, cfg: &PlacementConfig, mut ops: OpsLog) -> Result<Self, String> {
        if let Some(max) = ops.max_station() {
            if max >= topo.station_count() {
                return Err(format!(
                    "ops target station {max} but the topology has only {} stations",
                    topo.station_count()
                ));
            }
        }
        ops.normalize();
        let mut state = PlacementState::new(topo.station_count(), cfg);
        for st in ops.initially_inactive() {
            state.deactivate(st);
        }
        Ok(Self {
            state,
            paths: topo.shortest_paths(),
            ops,
            cursor: 0,
            held: BTreeMap::new(),
            stats: PlacementStats::default(),
        })
    }

    /// Whether the plane can change anything at all: placement enabled
    /// or at least one scheduled op. When false, [`PlacementPlane::route`]
    /// is the identity and the driver loop's placement phases no-op.
    pub fn is_live(&self) -> bool {
        self.state.enabled() || !self.ops.is_empty()
    }

    /// The underlying placement state machine.
    pub fn state(&self) -> &PlacementState {
        &self.state
    }

    /// Cumulative placement counters (snapshot payload).
    pub fn stats(&self) -> &PlacementStats {
        &self.stats
    }

    /// The normalized full ops journal as JSONL — what `--ops-journal-out`
    /// writes, and what replays the run byte-identically.
    pub fn ops_journal(&self) -> String {
        self.ops.to_jsonl()
    }

    /// The nearest active station to `from` (excluding `from` itself),
    /// delay ties broken by smallest id. `None` when the fleet has no
    /// other active station.
    pub fn nearest_active(&self, from: usize) -> Option<usize> {
        let candidates = self
            .state
            .active_stations()
            .into_iter()
            .filter(|&s| s != from)
            .map(StationId);
        self.paths
            .nearest(StationId(from), candidates)
            .map(|s| s.index())
    }

    /// Active stations holding the service `request` needs (global ids,
    /// ascending) — the placement hint for spill target selection. Empty
    /// when placement is disabled.
    pub fn holders_of(&self, request: &Request) -> Vec<usize> {
        if !self.state.enabled() {
            return Vec::new();
        }
        let svc = self.state.service_of(request.id().index());
        self.state.holders(svc)
    }

    /// Routes one arrival at `slot`: membership first (inactive home →
    /// rehome to the nearest active station), then placement (hit →
    /// proceed; miss → redirect to the nearest deadline-feasible holder,
    /// else install-and-hold, else any holder, else shed).
    pub fn route(&mut self, request: Request, slot: u64) -> RouteDecision {
        // Membership: requests never land on draining or inactive
        // stations.
        let request = if self.state.is_active(request.home().index()) {
            request
        } else {
            match self.nearest_active(request.home().index()) {
                Some(target) => {
                    self.stats.rehomed += 1;
                    rehome(&request, StationId(target))
                }
                None => {
                    self.stats.placement_shed += 1;
                    return RouteDecision::Shed;
                }
            }
        };
        if !self.state.enabled() {
            return RouteDecision::Proceed(request);
        }
        let home = request.home().index();
        let svc = self.state.service_of(request.id().index());
        if self.state.holds(home, svc) {
            self.state.touch(home, svc, slot);
            self.stats.hits += 1;
            return RouteDecision::Proceed(request);
        }
        self.stats.misses += 1;
        // Redirect beats installing when a holder is close enough that
        // the round trip still meets the request's latency requirement.
        let holder = self.paths.nearest(
            request.home(),
            self.state.holders(svc).into_iter().map(StationId),
        );
        if let Some(target) = holder {
            let feasible = self
                .paths
                .delay(request.home(), target)
                .is_some_and(|d| (d * 2.0).as_ms() <= request.deadline().as_ms() + 1e-9);
            if feasible {
                self.state.touch(target.index(), svc, slot);
                self.stats.redirects += 1;
                return RouteDecision::Proceed(rehome(&request, target));
            }
        }
        match self.state.begin_install(home, svc, slot) {
            InstallOutcome::Started {
                ready_at,
                warm,
                evicted,
            } => {
                if warm {
                    self.stats.installs_warm += 1;
                } else {
                    self.stats.installs_cold += 1;
                }
                self.stats.evictions += evicted.len() as u64;
                self.hold(ready_at, request);
                RouteDecision::Held { ready_at }
            }
            InstallOutcome::AlreadyInstalling { ready_at } => {
                self.hold(ready_at, request);
                RouteDecision::Held { ready_at }
            }
            InstallOutcome::Unplaceable => match holder {
                // Too far for the deadline, but a placed copy beats
                // dropping the request outright.
                Some(target) => {
                    self.state.touch(target.index(), svc, slot);
                    self.stats.redirects += 1;
                    RouteDecision::Proceed(rehome(&request, target))
                }
                None => {
                    self.stats.placement_shed += 1;
                    RouteDecision::Shed
                }
            },
        }
    }

    fn hold(&mut self, ready_at: u64, request: Request) {
        self.stats.held += 1;
        self.held.entry(ready_at).or_default().push(request);
    }

    /// Completes installs due at `slot` (services become resident).
    pub fn complete_installs(&mut self, slot: u64) -> Vec<mec_placement::InstallDone> {
        self.state.complete_due(slot)
    }

    /// Releases every held request due at or before `slot`, in release
    /// slot order then arrival order. Each re-enters routing (the
    /// station may have drained away in the meantime).
    pub fn release_due(&mut self, slot: u64) -> Vec<Request> {
        let mut rest = self.held.split_off(&(slot + 1));
        std::mem::swap(&mut self.held, &mut rest);
        rest.into_values().flatten().collect()
    }

    /// Whether any request is parked waiting for an install.
    pub fn has_held(&self) -> bool {
        !self.held.is_empty()
    }

    /// Drops every held request (run cut off at the hard stop). Returns
    /// how many were abandoned; the caller counts them as shed.
    pub fn abandon_held(&mut self) -> u64 {
        let n = self.held.values().map(Vec::len).sum::<usize>() as u64;
        self.held.clear();
        self.stats.placement_shed += n;
        n
    }

    /// Ops scheduled at or before `slot` that have not been applied yet,
    /// in normalized order. The caller applies each (joins/drains via
    /// [`PlacementPlane::apply_join`] / [`PlacementPlane::apply_drain`];
    /// leaves via the runtime's handoff, then
    /// [`PlacementPlane::apply_leave`]).
    pub fn ops_due(&mut self, slot: u64) -> Vec<ReconfigOp> {
        let mut due = Vec::new();
        while self.cursor < self.ops.ops.len() && self.ops.ops[self.cursor].slot() <= slot {
            due.push(self.ops.ops[self.cursor]);
            self.cursor += 1;
        }
        due
    }

    /// Whether every scheduled op has been applied.
    pub fn ops_exhausted(&self) -> bool {
        self.cursor >= self.ops.ops.len()
    }

    /// The last slot at which the schedule can still change membership
    /// (op slots, plus drain handoff slots). 0 with no ops.
    pub fn last_op_effect_slot(&self) -> u64 {
        self.ops
            .ops
            .iter()
            .map(|op| match *op {
                ReconfigOp::BsDrain { slot, window, .. } => slot.saturating_add(window),
                other => other.slot(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Stations whose drain handoff is due at or before `slot`.
    pub fn drains_due(&self, slot: u64) -> Vec<usize> {
        self.state.drains_due(slot)
    }

    /// Whether any station is still draining (the run waits for its
    /// handoff before declaring itself drained).
    pub fn has_pending_drains(&self) -> bool {
        !self.state.drains_due(u64::MAX).is_empty()
    }

    /// Applies a join: the station re-enters the fleet (cancelling any
    /// drain in progress).
    pub fn apply_join(&mut self, station: usize) {
        self.state.activate(station);
        self.stats.joins += 1;
    }

    /// Applies a drain: the station stops admitting now and hands off at
    /// `until`.
    pub fn apply_drain(&mut self, station: usize, until: u64) {
        if self.state.begin_drain(station, until) {
            self.stats.drains += 1;
        }
    }

    /// Finishes a leave or drain handoff: the station goes inactive,
    /// abandoning pending installs (their held requests re-route on
    /// release). `migrated` counts state the caller already moved; the
    /// runtime passes 0 here and credits the actual move later through
    /// [`PlacementPlane::note_migrated`], once the extraction executes.
    pub fn apply_handoff(&mut self, station: usize, leave: bool, migrated: u64) {
        self.state.deactivate(station);
        if leave {
            self.stats.leaves += 1;
        }
        self.stats.handoffs += 1;
        self.stats.migrated += migrated;
    }

    /// Credits `jobs` in-flight jobs (shipping as `bytes` of encoded
    /// station slice) moved by an executed handoff.
    pub fn note_migrated(&mut self, jobs: u64, bytes: u64) {
        self.stats.migrated += jobs;
        self.stats.moved_state_bytes += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_placement::EvictionPolicy;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn plane(services: usize, ops: OpsLog) -> (Topology, Vec<Request>, PlacementPlane) {
        let topo = TopologyBuilder::new(8).seed(3).build();
        let requests = WorkloadBuilder::new(&topo).seed(3).count(40).build();
        let cfg = PlacementConfig {
            services,
            cache_capacity: 4,
            eviction: EvictionPolicy::Lru,
            seed: 3,
        };
        let plane = PlacementPlane::new(&topo, &cfg, ops).unwrap();
        (topo, requests, plane)
    }

    #[test]
    fn disabled_plane_is_identity() {
        let (_, requests, mut plane) = plane(0, OpsLog::default());
        assert!(!plane.is_live());
        let r = requests[0].clone();
        assert_eq!(plane.route(r.clone(), 0), RouteDecision::Proceed(r));
        assert!(plane.stats().is_quiet());
    }

    #[test]
    fn first_touch_installs_and_holds_then_hits() {
        let (_, requests, mut plane) = plane(4, OpsLog::default());
        let r = requests[0].clone();
        let RouteDecision::Held { ready_at } = plane.route(r.clone(), 0) else {
            panic!("cold start must install, not proceed");
        };
        assert!(ready_at > 0, "install latency is charged in slots");
        assert_eq!(plane.stats().misses, 1);
        assert!(plane.has_held());
        assert!(plane.release_due(ready_at - 1).is_empty());
        plane.complete_installs(ready_at);
        let released = plane.release_due(ready_at);
        assert_eq!(released, vec![r.clone()]);
        // Released request re-routes: now a hit on the same station.
        assert_eq!(plane.route(r.clone(), ready_at), RouteDecision::Proceed(r));
        assert_eq!(plane.stats().hits, 1);
    }

    #[test]
    fn inactive_home_rehomes_to_nearest_active() {
        let ops = OpsLog::parse_jsonl("{\"op\":\"leave\",\"station\":2,\"slot\":0}").unwrap();
        let (_, requests, mut plane) = plane(0, ops);
        for op in plane.ops_due(0) {
            assert!(matches!(op, ReconfigOp::BsLeave { station: 2, .. }));
            plane.apply_handoff(2, true, 0);
        }
        let victim = requests
            .iter()
            .find(|r| r.home().index() == 2)
            .expect("seeded workload covers station 2")
            .clone();
        match plane.route(victim, 5) {
            RouteDecision::Proceed(r) => assert_ne!(r.home().index(), 2),
            other => panic!("expected a rehome, got {other:?}"),
        }
        assert_eq!(plane.stats().rehomed, 1);
        assert_eq!(plane.stats().leaves, 1);
    }

    #[test]
    fn everything_inactive_sheds() {
        let mut lines = String::new();
        for st in 0..8 {
            lines.push_str(&format!(
                "{{\"op\":\"leave\",\"station\":{st},\"slot\":0}}\n"
            ));
        }
        let (_, requests, mut plane) = plane(0, OpsLog::parse_jsonl(&lines).unwrap());
        for op in plane.ops_due(0) {
            plane.apply_handoff(op.station(), true, 0);
        }
        assert_eq!(plane.route(requests[0].clone(), 1), RouteDecision::Shed);
        assert_eq!(plane.stats().placement_shed, 1);
    }

    #[test]
    fn ops_cursor_is_slot_ordered_and_exhausts() {
        let ops = OpsLog::parse_jsonl(
            "{\"op\":\"drain\",\"station\":1,\"slot\":10,\"window\":5}\n\
             {\"op\":\"join\",\"station\":1,\"slot\":40}\n",
        )
        .unwrap();
        let (_, _, mut plane) = plane(0, ops);
        assert!(plane.is_live(), "ops alone make the plane live");
        assert!(plane.ops_due(9).is_empty());
        let due = plane.ops_due(10);
        assert_eq!(due.len(), 1);
        plane.apply_drain(1, 15);
        assert_eq!(plane.drains_due(14), Vec::<usize>::new());
        assert_eq!(plane.drains_due(15), vec![1]);
        assert!(!plane.ops_exhausted());
        assert_eq!(plane.last_op_effect_slot(), 40);
        let due = plane.ops_due(40);
        assert_eq!(due.len(), 1);
        plane.apply_join(1);
        assert!(plane.ops_exhausted());
        assert!(!plane.has_pending_drains());
    }
}
