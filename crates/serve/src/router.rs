//! Arrival routing and deterministic admission control.
//!
//! The router owns the *driver-side* view of every shard's queue depth.
//! Admission decisions use only that tracked backlog — the depth each
//! shard reported at the last barriered tick plus the injections sent
//! since — never live channel occupancy, so whether a run sheds a given
//! request depends only on the seed, the load, and the shard count, not
//! on thread timing.

use crate::partition::ShardPlan;
use mec_topology::station::StationId;
use mec_workload::request::Request;

/// Maps arrivals to shards and sheds load when a shard's backlog is full.
#[derive(Debug, Clone)]
pub struct Router {
    shards: usize,
    queue_capacity: usize,
    backlog: Vec<usize>,
    admitted: u64,
    shed: u64,
}

impl Router {
    /// Creates a router for `shards` shards, each willing to hold at most
    /// `queue_capacity` in-flight (waiting + running) requests.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `queue_capacity == 0`.
    pub fn new(shards: usize, queue_capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(queue_capacity > 0, "queue capacity must be positive");
        Self {
            shards,
            queue_capacity,
            backlog: vec![0; shards],
            admitted: 0,
            shed: 0,
        }
    }

    /// The shard that owns `home` under round-robin station assignment.
    /// Matches [`crate::partition`]'s `global_id % shards` rule.
    pub fn shard_of(&self, home: StationId) -> usize {
        home.index() % self.shards
    }

    /// Rewrites a request's home station to the owning shard's local id
    /// space. The request id is preserved; the shard engine re-identifies
    /// on injection anyway.
    pub fn localize(&self, request: &Request) -> Request {
        Request::new(
            request.id(),
            StationId(request.home().index() / self.shards),
            request.arrival_slot(),
            request.duration_slots(),
            request.tasks().to_vec(),
            request.demand().clone(),
            request.deadline(),
        )
    }

    /// Decides whether `request` may enter its shard. On admission the
    /// tracked backlog grows and the localized request is returned with
    /// its shard index; a full shard sheds the request (counted, `None`).
    pub fn admit(&mut self, request: &Request) -> Option<(usize, Request)> {
        let shard = self.shard_of(request.home());
        if self.backlog[shard] >= self.queue_capacity {
            self.shed += 1;
            return None;
        }
        self.backlog[shard] += 1;
        self.admitted += 1;
        Some((shard, self.localize(request)))
    }

    /// Replaces the tracked backlog of `shard` with the depth it reported
    /// at the last barriered tick.
    pub fn observe_backlog(&mut self, shard: usize, backlog: usize) {
        self.backlog[shard] = backlog;
    }

    /// Tracked per-shard queue depths, indexed by shard.
    pub fn backlogs(&self) -> &[usize] {
        &self.backlog
    }

    /// Requests admitted so far.
    pub const fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed so far.
    pub const fn shed(&self) -> u64 {
        self.shed
    }

    /// Checks the round-robin contract against an actual partition: every
    /// plan station must map back to its own shard. Used by tests and
    /// debug assertions in the runtime.
    pub fn consistent_with(&self, plans: &[ShardPlan]) -> bool {
        plans.len() == self.shards
            && plans.iter().all(|plan| {
                plan.stations
                    .iter()
                    .all(|&g| self.shard_of(g) == plan.shard)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    #[test]
    fn routing_matches_partition() {
        let topo = TopologyBuilder::new(17).seed(5).build();
        let plans = partition(&topo, 4);
        let router = Router::new(4, 8);
        assert!(router.consistent_with(&plans));
        for plan in &plans {
            for (local, &global) in plan.stations.iter().enumerate() {
                assert_eq!(router.shard_of(global), plan.shard);
                assert_eq!(global.index() / 4, local);
            }
        }
    }

    #[test]
    fn localize_stays_inside_shard_topology() {
        let topo = TopologyBuilder::new(10).seed(2).build();
        let plans = partition(&topo, 3);
        let router = Router::new(3, 8);
        let requests = WorkloadBuilder::new(&topo).seed(2).count(50).build();
        for r in &requests {
            let shard = router.shard_of(r.home());
            let local = router.localize(r);
            assert!(
                local.home().index() < plans[shard].topo.station_count(),
                "{} localized out of range for shard {shard}",
                r.home()
            );
            assert_eq!(plans[shard].stations[local.home().index()], r.home());
        }
    }

    #[test]
    fn full_shard_sheds() {
        let topo = TopologyBuilder::new(4).seed(0).build();
        let requests = WorkloadBuilder::new(&topo).seed(0).count(20).build();
        let mut router = Router::new(1, 3);
        let mut admitted = 0;
        let mut shed = 0;
        for r in &requests {
            match router.admit(r) {
                Some(_) => admitted += 1,
                None => shed += 1,
            }
        }
        assert_eq!(admitted, 3);
        assert_eq!(shed, 17);
        assert_eq!(router.admitted(), 3);
        assert_eq!(router.shed(), 17);
        // A tick report freeing the queue lets arrivals in again.
        router.observe_backlog(0, 0);
        assert!(router.admit(&requests[0]).is_some());
    }
}
