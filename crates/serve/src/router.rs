//! Arrival routing, deterministic admission control, and degraded-mode
//! handling for unavailable shards.
//!
//! The router owns the *driver-side* view of every shard's queue depth.
//! Admission decisions use only that tracked backlog — the depth each
//! shard reported at the last barriered tick plus the injections sent
//! since — never live channel occupancy, so whether a run sheds a given
//! request depends only on the seed, the load, and the shard count, not
//! on thread timing.
//!
//! For fault tolerance the router additionally keeps, per shard:
//!
//! * an **availability** flag — the supervisor marks a shard down when its
//!   worker crashes, stalls, or misses the reply deadline, and up again
//!   after a restart;
//! * a **bounded journal** of every admitted (already localized) request
//!   tagged with its admission slot — the replay log a restarted worker
//!   consumes to catch back up. Under checkpointed recovery the journal is
//!   pruned to the last checkpoint; under genesis replay it spans the run.
//!
//! While a shard is down, arrivals for it follow the configured
//! [`DegradedPolicy`]: journal them for replay at recovery (`Buffer`, the
//! default — lossless), drop them immediately (`Shed`), or reroute them to
//! the nearest available shard (`Spill` — lossy with respect to placement,
//! but keeps serving).

use crate::partition::ShardPlan;
use mec_topology::station::StationId;
use mec_workload::request::Request;
use std::collections::VecDeque;

/// What to do with arrivals whose home shard is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedPolicy {
    /// Hold the arrival in the shard's journal and replay it (at its
    /// original slot) when the shard recovers. Lossless and exact: after
    /// catch-up the shard is in the state it would have reached without
    /// the outage.
    #[default]
    Buffer,
    /// Drop the arrival immediately (counted as shed).
    Shed,
    /// Reroute the arrival to the nearest available shard (by cyclic
    /// shard distance), mapped onto that shard's closest local station.
    Spill,
}

impl DegradedPolicy {
    /// Parses the CLI spelling (`buffer` | `shed` | `spill`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "buffer" => Some(Self::Buffer),
            "shed" => Some(Self::Shed),
            "spill" => Some(Self::Spill),
            _ => None,
        }
    }
}

/// The outcome of routing one arrival.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The home shard is up: inject the localized request now.
    Inject {
        /// The owning shard.
        shard: usize,
        /// The request, rewritten into the shard-local id space.
        request: Request,
    },
    /// The home shard is down and the policy buffers: the request sits in
    /// the journal until the shard recovers. Nothing to send now.
    Buffered {
        /// The (down) owning shard.
        shard: usize,
        /// The request, rewritten into the shard-local id space — what
        /// the journal holds and replay will eventually deliver.
        request: Request,
    },
    /// The home shard is down and the policy spills: inject the request
    /// into a neighbor shard now.
    Spilled {
        /// The shard that took the request over.
        shard: usize,
        /// The request, rewritten into the *spill* shard's local id space.
        request: Request,
    },
    /// The request was dropped (full queue, full journal, or `Shed`
    /// policy while down).
    Shed,
}

/// Maps arrivals to shards, sheds load when a shard's backlog is full,
/// and journals admissions for crash recovery.
#[derive(Debug, Clone)]
pub struct Router {
    shards: usize,
    queue_capacity: usize,
    backlog: Vec<usize>,
    admitted: u64,
    shed: u64,
    available: Vec<bool>,
    /// Stations per shard, for clamping spilled requests into the target
    /// shard's local id space (set from the partition plans).
    station_counts: Vec<usize>,
    degraded: DegradedPolicy,
    /// Per-shard replay log: (admission slot, localized request).
    journal: Vec<VecDeque<(u64, Request)>>,
    journal_cap: usize,
    journal_dropped: u64,
    spilled: u64,
    shed_while_down: u64,
}

impl Router {
    /// Creates a router for `shards` shards, each willing to hold at most
    /// `queue_capacity` in-flight (waiting + running) requests. Degraded
    /// policy defaults to [`DegradedPolicy::Buffer`]; the journal cap
    /// defaults to `1 << 20` entries per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `queue_capacity == 0`.
    pub fn new(shards: usize, queue_capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(queue_capacity > 0, "queue capacity must be positive");
        Self {
            shards,
            queue_capacity,
            backlog: vec![0; shards],
            admitted: 0,
            shed: 0,
            available: vec![true; shards],
            station_counts: vec![usize::MAX; shards],
            degraded: DegradedPolicy::Buffer,
            journal: (0..shards).map(|_| VecDeque::new()).collect(),
            journal_cap: 1 << 20,
            journal_dropped: 0,
            spilled: 0,
            shed_while_down: 0,
        }
    }

    /// Records each shard's station count (for spill localization) from
    /// the actual partition.
    pub fn set_station_counts(&mut self, counts: Vec<usize>) {
        assert_eq!(counts.len(), self.shards, "one count per shard");
        self.station_counts = counts;
    }

    /// Sets the degraded-mode policy for arrivals whose shard is down.
    pub fn set_degraded_policy(&mut self, policy: DegradedPolicy) {
        self.degraded = policy;
    }

    /// Caps each shard's journal at `cap` entries (oldest dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` — recovery needs at least one entry.
    pub fn set_journal_cap(&mut self, cap: usize) {
        assert!(cap > 0, "journal cap must be positive");
        self.journal_cap = cap;
    }

    /// The shard that owns `home` under round-robin station assignment.
    /// Matches [`crate::partition`]'s `global_id % shards` rule.
    pub fn shard_of(&self, home: StationId) -> usize {
        home.index() % self.shards
    }

    /// Rewrites a request's home station to the owning shard's local id
    /// space. The request id is preserved; the shard engine re-identifies
    /// on injection anyway.
    pub fn localize(&self, request: &Request) -> Request {
        Request::new(
            request.id(),
            StationId(request.home().index() / self.shards),
            request.arrival_slot(),
            request.duration_slots(),
            request.tasks().to_vec(),
            request.demand().clone(),
            request.deadline(),
        )
    }

    /// Rewrites a request into `target`'s local id space even when the
    /// home station belongs to another shard: the natural local index is
    /// clamped into the target's station range, which under round-robin
    /// assignment lands on a station whose global id neighbors the home.
    fn localize_into(&self, target: usize, request: &Request) -> Request {
        let natural = request.home().index() / self.shards;
        let clamped = natural.min(self.station_counts[target].saturating_sub(1));
        Request::new(
            request.id(),
            StationId(clamped),
            request.arrival_slot(),
            request.duration_slots(),
            request.tasks().to_vec(),
            request.demand().clone(),
            request.deadline(),
        )
    }

    /// Picks the spill destination for a request homing on (down)
    /// `home_shard`. With a placement hint, the winner is the hinted
    /// *holder station* whose shard is up — minimum cyclic shard distance
    /// first, then smallest global station id (the pinned tie-break) —
    /// and the request lands exactly on that station. Without a usable
    /// hint this falls back to the legacy nearest-available-shard rule.
    /// Returns `(shard, Some(local_station))` for a directed spill,
    /// `(shard, None)` for the legacy clamp.
    fn spill_choice(
        &self,
        home_shard: usize,
        holders: Option<&[usize]>,
    ) -> Option<(usize, Option<usize>)> {
        if let Some(holders) = holders {
            let best = holders
                .iter()
                .map(|&g| (g % self.shards, g))
                .filter(|&(s, _)| s != home_shard && self.available[s])
                .min_by_key(|&(s, g)| ((s + self.shards - home_shard) % self.shards, g));
            if let Some((shard, global)) = best {
                return Some((shard, Some(global / self.shards)));
            }
        }
        self.spill_target(home_shard).map(|s| (s, None))
    }

    /// Marks `shard` unavailable: subsequent arrivals follow the degraded
    /// policy until [`Router::mark_up`].
    pub fn mark_down(&mut self, shard: usize) {
        self.available[shard] = false;
    }

    /// Marks `shard` available again (after a successful restart).
    pub fn mark_up(&mut self, shard: usize) {
        self.available[shard] = true;
    }

    /// Whether `shard` is currently marked available.
    pub fn is_available(&self, shard: usize) -> bool {
        self.available[shard]
    }

    /// The nearest available shard to `shard` by cyclic distance
    /// (deterministic spill target), if any shard is up at all.
    pub fn spill_target(&self, shard: usize) -> Option<usize> {
        (1..self.shards)
            .map(|d| (shard + d) % self.shards)
            .find(|&s| self.available[s])
    }

    /// Appends an admitted request to `shard`'s replay journal, evicting
    /// the oldest entry when the cap is reached.
    fn journal_push(&mut self, shard: usize, slot: u64, request: Request) {
        let q = &mut self.journal[shard];
        if q.len() >= self.journal_cap {
            q.pop_front();
            self.journal_dropped += 1;
        }
        q.push_back((slot, request));
    }

    /// Decides what happens to `request` arriving at `slot`.
    ///
    /// When the home shard is up this is classic admission control: a full
    /// shard sheds, otherwise the localized request is admitted, journaled,
    /// and returned for live injection. When the home shard is down the
    /// configured [`DegradedPolicy`] applies. Every admitted request —
    /// injected, buffered, or spilled — is recorded in the journal of the
    /// shard that will (eventually) own it.
    pub fn admit(&mut self, request: &Request, slot: u64) -> Admission {
        self.admit_with(request, slot, None)
    }

    /// [`Router::admit`] with a placement hint: `holders` are the global
    /// ids of stations currently holding the request's service. The hint
    /// only affects [`DegradedPolicy::Spill`], which then reroutes onto a
    /// station that can actually serve the request instead of the
    /// geometrically nearest shard.
    pub fn admit_with(
        &mut self,
        request: &Request,
        slot: u64,
        holders: Option<&[usize]>,
    ) -> Admission {
        let home_shard = self.shard_of(request.home());
        if self.available[home_shard] {
            if self.backlog[home_shard] >= self.queue_capacity {
                self.shed += 1;
                return Admission::Shed;
            }
            let localized = self.localize(request);
            self.backlog[home_shard] += 1;
            self.admitted += 1;
            self.journal_push(home_shard, slot, localized.clone());
            return Admission::Inject {
                shard: home_shard,
                request: localized,
            };
        }
        match self.degraded {
            DegradedPolicy::Buffer => {
                if self.backlog[home_shard] >= self.queue_capacity
                    || self.journal[home_shard].len() >= self.journal_cap
                {
                    self.shed += 1;
                    self.shed_while_down += 1;
                    return Admission::Shed;
                }
                let localized = self.localize(request);
                self.backlog[home_shard] += 1;
                self.admitted += 1;
                self.journal_push(home_shard, slot, localized.clone());
                Admission::Buffered {
                    shard: home_shard,
                    request: localized,
                }
            }
            DegradedPolicy::Shed => {
                self.shed += 1;
                self.shed_while_down += 1;
                Admission::Shed
            }
            DegradedPolicy::Spill => {
                let Some((target, station)) = self.spill_choice(home_shard, holders) else {
                    self.shed += 1;
                    self.shed_while_down += 1;
                    return Admission::Shed;
                };
                if self.backlog[target] >= self.queue_capacity {
                    self.shed += 1;
                    self.shed_while_down += 1;
                    return Admission::Shed;
                }
                let localized = match station {
                    Some(local) => Request::new(
                        request.id(),
                        StationId(local.min(self.station_counts[target].saturating_sub(1))),
                        request.arrival_slot(),
                        request.duration_slots(),
                        request.tasks().to_vec(),
                        request.demand().clone(),
                        request.deadline(),
                    ),
                    None => self.localize_into(target, request),
                };
                self.backlog[target] += 1;
                self.admitted += 1;
                self.spilled += 1;
                self.journal_push(target, slot, localized.clone());
                Admission::Spilled {
                    shard: target,
                    request: localized,
                }
            }
        }
    }

    /// Moves every journaled request homed on global station `from` to
    /// global station `to` — the journal half of a drain/leave handoff.
    /// Entries leave the source shard's journal, are rewritten to `to`'s
    /// local id space, and merge into the destination shard's journal in
    /// admission-slot order (existing entries first on equal slots, so
    /// the merge is deterministic). Returns how many entries moved.
    ///
    /// The caller is responsible for rebuilding affected live workers by
    /// journal replay; the router only rewrites the replay log. The live
    /// handoff path no longer uses this (it ships engine state directly
    /// as a [`mec_sim::StationSlice`] and keeps journals untouched so
    /// replay stays exact); it remains for offline journal surgery.
    pub fn migrate_station(&mut self, from: StationId, to: StationId) -> u64 {
        let from_shard = self.shard_of(from);
        let to_shard = self.shard_of(to);
        let from_local = from.index() / self.shards;
        let to_local = to.index() / self.shards;
        let (moved, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut self.journal[from_shard])
            .into_iter()
            .partition(|(_, r)| r.home().index() == from_local);
        self.journal[from_shard] = kept.into_iter().collect();
        let migrated = moved.len() as u64;
        if migrated == 0 {
            return 0;
        }
        let mut merged: Vec<(u64, Request)> = self.journal[to_shard].drain(..).collect();
        for (slot, r) in moved {
            merged.push((
                slot,
                Request::new(
                    r.id(),
                    StationId(to_local),
                    r.arrival_slot(),
                    r.duration_slots(),
                    r.tasks().to_vec(),
                    r.demand().clone(),
                    r.deadline(),
                ),
            ));
        }
        // Stable: existing destination entries keep winning equal-slot ties.
        merged.sort_by_key(|(slot, _)| *slot);
        self.journal[to_shard] = merged.into_iter().collect();
        migrated
    }

    /// Moves `n` tracked in-flight jobs from `from`'s backlog to `to`'s
    /// — the admission-control view of a station handoff. Saturating on
    /// the source side (the next barriered tick reports resynchronize
    /// the truth either way).
    pub fn transfer_backlog(&mut self, from: usize, to: usize, n: usize) {
        if from == to || n == 0 {
            return;
        }
        let moved = n.min(self.backlog[from]);
        self.backlog[from] -= moved;
        self.backlog[to] += moved;
    }

    /// Counts `n` requests shed outside the router (placement-plane
    /// sheds, held requests abandoned at the hard stop), keeping the
    /// `admitted + shed == dispatched` invariant intact.
    pub fn count_shed(&mut self, n: u64) {
        self.shed += n;
    }

    /// Clones `shard`'s journal entries with admission slot `>= from_slot`
    /// — the replay payload for a worker restarting from a checkpoint
    /// whose next slot is `from_slot`.
    pub fn journal_since(&self, shard: usize, from_slot: u64) -> Vec<(u64, Request)> {
        self.journal[shard]
            .iter()
            .filter(|(s, _)| *s >= from_slot)
            .cloned()
            .collect()
    }

    /// Drops `shard`'s journal entries with admission slot `< before_slot`
    /// — safe once a checkpoint covering them exists.
    pub fn prune_journal(&mut self, shard: usize, before_slot: u64) {
        let q = &mut self.journal[shard];
        while q.front().is_some_and(|(s, _)| *s < before_slot) {
            q.pop_front();
        }
    }

    /// Current journal length of `shard`.
    pub fn journal_len(&self, shard: usize) -> usize {
        self.journal[shard].len()
    }

    /// Replaces the tracked backlog of `shard` with the depth it reported
    /// at the last barriered tick.
    pub fn observe_backlog(&mut self, shard: usize, backlog: usize) {
        self.backlog[shard] = backlog;
    }

    /// Tracked per-shard queue depths, indexed by shard.
    pub fn backlogs(&self) -> &[usize] {
        &self.backlog
    }

    /// Requests admitted so far (injected, buffered, or spilled).
    pub const fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed so far.
    pub const fn shed(&self) -> u64 {
        self.shed
    }

    /// Requests rerouted to a neighbor shard while their home was down.
    pub const fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Requests shed because their shard was down (subset of
    /// [`Router::shed`]).
    pub const fn shed_while_down(&self) -> u64 {
        self.shed_while_down
    }

    /// Journal entries evicted by the cap so far.
    pub const fn journal_dropped(&self) -> u64 {
        self.journal_dropped
    }

    /// Checks the round-robin contract against an actual partition: every
    /// plan station must map back to its own shard. Used by tests and
    /// debug assertions in the runtime.
    pub fn consistent_with(&self, plans: &[ShardPlan]) -> bool {
        plans.len() == self.shards
            && plans.iter().all(|plan| {
                plan.stations
                    .iter()
                    .all(|&g| self.shard_of(g) == plan.shard)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn admit_simple(router: &mut Router, request: &Request, slot: u64) -> Option<(usize, Request)> {
        match router.admit(request, slot) {
            Admission::Inject { shard, request } => Some((shard, request)),
            _ => None,
        }
    }

    #[test]
    fn routing_matches_partition() {
        let topo = TopologyBuilder::new(17).seed(5).build();
        let plans = partition(&topo, 4);
        let router = Router::new(4, 8);
        assert!(router.consistent_with(&plans));
        for plan in &plans {
            for (local, &global) in plan.stations.iter().enumerate() {
                assert_eq!(router.shard_of(global), plan.shard);
                assert_eq!(global.index() / 4, local);
            }
        }
    }

    #[test]
    fn localize_stays_inside_shard_topology() {
        let topo = TopologyBuilder::new(10).seed(2).build();
        let plans = partition(&topo, 3);
        let router = Router::new(3, 8);
        let requests = WorkloadBuilder::new(&topo).seed(2).count(50).build();
        for r in &requests {
            let shard = router.shard_of(r.home());
            let local = router.localize(r);
            assert!(
                local.home().index() < plans[shard].topo.station_count(),
                "{} localized out of range for shard {shard}",
                r.home()
            );
            assert_eq!(plans[shard].stations[local.home().index()], r.home());
        }
    }

    #[test]
    fn full_shard_sheds() {
        let topo = TopologyBuilder::new(4).seed(0).build();
        let requests = WorkloadBuilder::new(&topo).seed(0).count(20).build();
        let mut router = Router::new(1, 3);
        let mut admitted = 0;
        let mut shed = 0;
        for r in &requests {
            match admit_simple(&mut router, r, 0) {
                Some(_) => admitted += 1,
                None => shed += 1,
            }
        }
        assert_eq!(admitted, 3);
        assert_eq!(shed, 17);
        assert_eq!(router.admitted(), 3);
        assert_eq!(router.shed(), 17);
        assert_eq!(router.shed_while_down(), 0, "shard was never down");
        // A tick report freeing the queue lets arrivals in again.
        router.observe_backlog(0, 0);
        assert!(admit_simple(&mut router, &requests[0], 1).is_some());
    }

    #[test]
    fn buffer_policy_journals_while_down() {
        let topo = TopologyBuilder::new(4).seed(1).build();
        let requests = WorkloadBuilder::new(&topo).seed(1).count(8).build();
        let mut router = Router::new(2, 16);
        router.mark_down(0);
        let mut buffered = 0;
        let mut injected = 0;
        for (i, r) in requests.iter().enumerate() {
            match router.admit(r, i as u64) {
                Admission::Buffered { shard, request } => {
                    assert_eq!(shard, 0);
                    assert_eq!(request.id(), r.id());
                    buffered += 1;
                }
                Admission::Inject { shard, .. } => {
                    assert_eq!(shard, 1);
                    injected += 1;
                }
                other => panic!("unexpected admission {other:?}"),
            }
        }
        assert!(buffered > 0, "some requests home on shard 0");
        assert_eq!(buffered + injected, 8);
        // Buffered arrivals are journaled and grow the tracked backlog.
        assert_eq!(router.journal_len(0), buffered);
        assert_eq!(router.backlogs()[0], buffered);
        assert_eq!(router.admitted(), 8);
        // Recovery replays everything from slot 0.
        assert_eq!(router.journal_since(0, 0).len(), buffered);
        router.mark_up(0);
        assert!(router.is_available(0));
    }

    #[test]
    fn shed_policy_drops_while_down() {
        let topo = TopologyBuilder::new(4).seed(1).build();
        let requests = WorkloadBuilder::new(&topo).seed(1).count(8).build();
        let mut router = Router::new(2, 16);
        router.set_degraded_policy(DegradedPolicy::Shed);
        router.mark_down(0);
        for (i, r) in requests.iter().enumerate() {
            let _ = router.admit(r, i as u64);
        }
        assert!(router.shed_while_down() > 0);
        assert_eq!(router.shed(), router.shed_while_down());
        assert_eq!(router.journal_len(0), 0, "shed arrivals are not journaled");
    }

    #[test]
    fn spill_policy_reroutes_to_available_neighbor() {
        let topo = TopologyBuilder::new(9).seed(4).build();
        let plans = partition(&topo, 3);
        let requests = WorkloadBuilder::new(&topo).seed(4).count(30).build();
        let mut router = Router::new(3, 64);
        router.set_station_counts(plans.iter().map(|p| p.topo.station_count()).collect());
        router.set_degraded_policy(DegradedPolicy::Spill);
        router.mark_down(1);
        assert_eq!(router.spill_target(1), Some(2));
        let mut spilled = 0;
        for (i, r) in requests.iter().enumerate() {
            match router.admit(r, i as u64) {
                Admission::Spilled { shard, request } => {
                    assert_eq!(shard, 2);
                    assert!(request.home().index() < plans[2].topo.station_count());
                    spilled += 1;
                }
                Admission::Inject { shard, .. } => assert_ne!(shard, 1),
                other => panic!("unexpected admission {other:?}"),
            }
        }
        assert!(spilled > 0);
        assert_eq!(router.spilled(), spilled);
        // Spilled requests live in the target shard's journal.
        assert!(router.journal_len(2) as u64 >= spilled);
        assert_eq!(router.journal_len(1), 0);
    }

    #[test]
    fn spill_with_no_shard_up_sheds() {
        let topo = TopologyBuilder::new(4).seed(0).build();
        let requests = WorkloadBuilder::new(&topo).seed(0).count(4).build();
        let mut router = Router::new(2, 8);
        router.set_degraded_policy(DegradedPolicy::Spill);
        router.mark_down(0);
        router.mark_down(1);
        assert_eq!(router.spill_target(0), None);
        for r in &requests {
            assert_eq!(router.admit(r, 0), Admission::Shed);
        }
        assert_eq!(router.shed(), 4);
        assert_eq!(router.shed_while_down(), 4);
    }

    #[test]
    fn placement_spill_prefers_holder_with_pinned_tie_break() {
        let topo = TopologyBuilder::new(9).seed(4).build();
        let plans = partition(&topo, 3);
        let requests = WorkloadBuilder::new(&topo).seed(4).count(30).build();
        let mut router = Router::new(3, 64);
        router.set_station_counts(plans.iter().map(|p| p.topo.station_count()).collect());
        router.set_degraded_policy(DegradedPolicy::Spill);
        router.mark_down(0);
        let victim = requests
            .iter()
            .find(|r| r.home().index() % 3 == 0)
            .expect("seeded workload covers shard 0");
        // Holders 4 and 7 share shard 1 (cyclic distance 1 from shard 0),
        // holder 5 sits on shard 2 (distance 2). The tie inside shard 1
        // resolves to the smallest global station id: 4, local index 1.
        match router.admit_with(victim, 0, Some(&[7, 5, 4])) {
            Admission::Spilled { shard, request } => {
                assert_eq!(shard, 1);
                assert_eq!(request.home().index(), 4 / 3);
            }
            other => panic!("expected a directed spill, got {other:?}"),
        }
        // The same arrival without a hint follows the legacy clamp rule.
        let mut legacy = Router::new(3, 64);
        legacy.set_station_counts(plans.iter().map(|p| p.topo.station_count()).collect());
        legacy.set_degraded_policy(DegradedPolicy::Spill);
        legacy.mark_down(0);
        assert_eq!(
            legacy.admit_with(victim, 0, None),
            legacy.clone().admit(victim, 0),
            "no hint degrades to the legacy spill"
        );
        // Holders only on the down shard itself: fall back to legacy too.
        let mut own = Router::new(3, 64);
        own.set_station_counts(plans.iter().map(|p| p.topo.station_count()).collect());
        own.set_degraded_policy(DegradedPolicy::Spill);
        own.mark_down(0);
        match own.admit_with(victim, 0, Some(&[0, 3])) {
            Admission::Spilled { shard, .. } => assert_eq!(shard, 1),
            other => panic!("expected the legacy spill, got {other:?}"),
        }
    }

    #[test]
    fn migrate_station_moves_and_rewrites_journal_entries() {
        let topo = TopologyBuilder::new(8).seed(6).build();
        let requests = WorkloadBuilder::new(&topo).seed(6).count(40).build();
        let mut router = Router::new(2, 1024);
        router.set_station_counts(vec![4, 4]);
        for (i, r) in requests.iter().enumerate() {
            let _ = router.admit(r, i as u64);
        }
        let before: usize = (0..2).map(|s| router.journal_len(s)).sum();
        // Move station 6 (shard 0, local 3) onto station 1 (shard 1, local 0).
        let from_count = router
            .journal_since(0, 0)
            .iter()
            .filter(|(_, r)| r.home().index() == 3)
            .count() as u64;
        assert!(
            from_count > 0,
            "seeded workload homes requests on station 6"
        );
        let moved = router.migrate_station(StationId(6), StationId(1));
        assert_eq!(moved, from_count);
        let after: usize = (0..2).map(|s| router.journal_len(s)).sum();
        assert_eq!(before, after, "migration moves entries, never drops them");
        assert!(router
            .journal_since(0, 0)
            .iter()
            .all(|(_, r)| r.home().index() != 3));
        // Destination journal stays slot-sorted after the merge.
        let dest = router.journal_since(1, 0);
        assert!(dest.windows(2).all(|w| w[0].0 <= w[1].0));
        // Nothing homed on the source: a second migration is a no-op.
        assert_eq!(router.migrate_station(StationId(6), StationId(1)), 0);
    }

    #[test]
    fn transfer_backlog_moves_and_saturates() {
        let mut router = Router::new(3, 16);
        router.observe_backlog(0, 5);
        router.observe_backlog(1, 2);
        router.transfer_backlog(0, 1, 3);
        assert_eq!(router.backlogs(), &[2, 5, 0]);
        // Saturates at the tracked source depth.
        router.transfer_backlog(0, 2, 10);
        assert_eq!(router.backlogs(), &[0, 5, 2]);
        // Self-transfer is a no-op.
        router.transfer_backlog(1, 1, 4);
        assert_eq!(router.backlogs(), &[0, 5, 2]);
    }

    #[test]
    fn journal_prunes_and_caps() {
        let topo = TopologyBuilder::new(4).seed(0).build();
        let requests = WorkloadBuilder::new(&topo).seed(0).count(12).build();
        let mut router = Router::new(1, 1024);
        router.set_journal_cap(5);
        for (i, r) in requests.iter().enumerate() {
            let _ = router.admit(r, i as u64);
        }
        // Cap 5: only the newest five entries remain; seven were dropped.
        assert_eq!(router.journal_len(0), 5);
        assert_eq!(router.journal_dropped(), 7);
        assert_eq!(router.journal_since(0, 9).len(), 3);
        router.prune_journal(0, 10);
        assert_eq!(router.journal_len(0), 2);
        router.prune_journal(0, u64::MAX);
        assert_eq!(router.journal_len(0), 0);
    }
}
