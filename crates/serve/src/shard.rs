//! Shard actors: one thread per shard, each owning a private
//! [`mec_sim::Engine`] plus a boxed policy, driven over channels.
//!
//! Each worker is an actor with a bounded command mailbox and a shared
//! progress plane. The coordinator feeds any number of
//! [`ShardCommand::Inject`]s (slot-stamped by construction: injections for
//! slot `t` always precede the grant covering `t`, and the mailbox is
//! FIFO), then extends the shard's run-ahead lease with
//! [`ShardCommand::Grant`]. The worker executes every leased slot
//! back-to-back, streaming one [`ShardEvent::Tick`] per slot onto the
//! progress channel — it never waits for the coordinator between slots of
//! the same grant, which is what removes the per-slot barrier. A policy
//! error during a live tick becomes a [`ShardEvent::Error`]; an abnormal
//! thread death (chaos crash, engine panic) becomes a
//! [`ShardEvent::Died`] sent by the spawn wrapper. Synchronous
//! request/reply traffic (station extraction, recovery, finish) stays on
//! the per-shard reply channel.
//!
//! ## Recovery and chaos
//!
//! A worker can be spawned with a [`RecoverPlan`]: it restores the engine
//! from a checkpointed [`EngineState`], replays journaled arrivals slot by
//! slot through the catch-up horizon, and answers with a single
//! [`ShardReply::Recovered`] before entering the normal command loop. It
//! can also be *armed* with scripted [`ShardFault`]s that fire when the
//! matching live tick executes — crash (panic), stall (stop replying
//! without exiting), or slow (sleep before the tick). Faults never fire
//! during catch-up replay, so a consumed fault cannot re-kill the shard it
//! already killed. The coordinator never leases slots at or beyond a
//! scripted fault until the fault's own slot is reached, so faults fire at
//! exactly the slot the lockstep protocol would have fired them.

use crate::chaos::{FaultKind, ShardFault};
use crate::obs::StallProbe;
use crate::partition::ShardPlan;
use mec_obs::{Histogram, LifecycleRing, TraceRing};
#[cfg(feature = "lifecycle")]
use mec_obs::{LifecycleRecord, LifecycleSink};
use mec_sim::{
    Engine, EngineState, Metrics, PolicyTelemetry, SlotConfig, SlotPolicy, SlotReport, StationSlice,
};
use mec_topology::StationId;
use mec_workload::request::Request;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the driver sends a shard worker.
#[derive(Debug)]
pub enum ShardCommand {
    /// Feed one admitted (already shard-localized) request to the engine.
    Inject(Request),
    /// Clone this shard-local station's in-flight jobs into a
    /// [`StationSlice`], mark the originals migrated, and reply with
    /// [`ShardReply::Extracted`]. The drain/leave handoff path: only the
    /// drained station's state moves, never the whole engine.
    ExtractStation(StationId),
    /// Continue the jobs in a slice extracted elsewhere, re-homed onto the
    /// given shard-local station. No reply (like [`ShardCommand::Inject`]).
    /// The third field carries the global request id of each job in slice
    /// order, so lifecycle tracking survives the engine re-identifying the
    /// absorbed jobs (empty when lifecycle tracing is off).
    AbsorbStation(Box<StationSlice>, StationId, Vec<u64>),
    /// Extend the shard's run-ahead lease: execute every slot up to and
    /// including `through`, streaming one [`ShardEvent::Tick`] per slot on
    /// the progress channel. Grants are cumulative — a later grant only
    /// ever extends the lease; slots already executed are skipped.
    Grant {
        /// Last slot (inclusive) the worker may execute.
        through: u64,
    },
    /// Flush terminal accounting, reply with [`ShardReply::Final`], stop.
    Finish,
}

/// Per-tick report from one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTick {
    /// The reporting shard.
    pub shard: usize,
    /// What happened in the slot just executed.
    pub report: SlotReport,
    /// Waiting + running jobs after the slot — the queue depth admission
    /// control tracks.
    pub backlog: usize,
    /// Cumulative reward collected by this shard.
    pub total_reward: f64,
    /// Cumulative completed count.
    pub completed: usize,
    /// Cumulative expired count.
    pub expired: usize,
    /// Cumulative aborted count.
    pub aborted: usize,
    /// Latency samples recorded since the previous tick, in ms.
    pub new_latencies: Vec<f64>,
    /// Engine checkpoint taken right after this slot, when the worker was
    /// spawned with a nonzero checkpoint interval and this slot completes
    /// an interval. The supervisor adopts it as the shard's recovery base.
    pub checkpoint: Option<EngineState>,
    /// Learner-internals snapshot, attached when the worker was spawned
    /// with a nonzero telemetry interval, this slot completes an
    /// interval, and the policy exposes telemetry (only learning policies
    /// do). Boxed: it rides in every tick reply but is rarely populated.
    pub telemetry: Option<Box<PolicyTelemetry>>,
    /// Arm-lifecycle events recorded by the policy's learner probe since
    /// the previous tick. Empty unless the worker was spawned with
    /// `probe` set and the policy implements a learner.
    pub learner_events: Vec<mec_sim::LearnerEvent>,
    /// Cumulative count of probe events dropped at the policy's bounded
    /// recorder (ring saturation). Only meaningful while probing.
    pub probe_dropped: u64,
    /// Compact snapshot of the decision the policy took this slot, for
    /// the flight recorder. `None` unless probing (or the policy is not
    /// a learner).
    pub decision: Option<mec_sim::DecisionRecord>,
    /// Wall-clock LP solve times (ms) drained from the policy's solver
    /// this tick. Live-metrics only — never reaches snapshots or
    /// deterministic traces. Empty unless probing an LP-backed policy.
    pub solve_times_ms: Vec<f64>,
}

/// Terminal report from one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFinal {
    /// The reporting shard.
    pub shard: usize,
    /// The shard engine's complete metrics.
    pub metrics: Metrics,
}

/// First reply of a worker spawned with a [`RecoverPlan`]: the state it
/// reached after restoring the checkpoint and replaying the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecovered {
    /// The reporting shard.
    pub shard: usize,
    /// Queue depth after catch-up.
    pub backlog: usize,
    /// Cumulative reward after catch-up.
    pub total_reward: f64,
    /// Cumulative completed count after catch-up.
    pub completed: usize,
    /// Cumulative expired count after catch-up.
    pub expired: usize,
    /// Cumulative aborted count after catch-up.
    pub aborted: usize,
    /// *All* latency samples recorded so far (the driver replaces its
    /// per-shard sample set wholesale — deltas from before the crash are
    /// unreliable).
    pub latencies: Vec<f64>,
    /// Journal entries re-injected during catch-up.
    pub replayed: u64,
}

/// What a shard worker sends back on its synchronous reply channel.
/// Per-slot progress rides the shared [`ShardProgress`] channel instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ShardReply {
    /// Answer to [`ShardCommand::Finish`]; the worker exits after this.
    Final(ShardFinal),
    /// First reply after a spawn with a [`RecoverPlan`] — sent before any
    /// command is consumed.
    Recovered(ShardRecovered),
    /// Answer to [`ShardCommand::ExtractStation`]: the drained station's
    /// in-flight jobs, ready to ship to the takeover shard, plus the
    /// global request id of each job in slice order (empty when lifecycle
    /// tracing is off).
    Extracted(Box<StationSlice>, Vec<u64>),
    /// The policy produced an illegal schedule during catch-up replay; the
    /// worker exits after this and ignores further commands. (Live-tick
    /// errors travel as [`ShardEvent::Error`] on the progress channel.)
    Error(String),
}

/// Asynchronous per-shard progress on the shared watermark plane.
///
/// `Tick` dwarfs the other variants (its telemetry vectors' inline
/// headers add up), but exactly one event per shard per slot crosses
/// the channel — boxing it would cost an allocation per tick to save
/// nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ShardEvent {
    /// One leased slot executed; carries that slot's full report.
    Tick(ShardTick),
    /// The policy produced an illegal schedule at a live tick; the worker
    /// exits after sending this.
    Error(String),
    /// The worker thread terminated abnormally (panic). Sent by the spawn
    /// wrapper, never by the worker body, so it always follows every tick
    /// the worker managed to stream before dying.
    Died,
}

/// Envelope for [`ShardEvent`]s on the shared progress channel: the
/// coordinator folds ticks in shard order at each watermark and uses the
/// spawn generation to drop events from stale incarnations (a restarted
/// shard reuses the same channel).
#[derive(Debug)]
pub struct ShardProgress {
    /// The reporting shard.
    pub shard: usize,
    /// Spawn generation of the worker that sent this (0 for the initial
    /// spawn, +1 per restart).
    pub gen: u64,
    /// What happened.
    pub event: ShardEvent,
}

/// One handoff operation a shard participated in, recorded by the
/// supervisor so catch-up replay can re-apply it at the top of the same
/// slot it originally executed in. Without these, a restarted shard would
/// either resurrect jobs it handed away (missing extract) or lose jobs it
/// took over (missing absorb).
#[derive(Debug, Clone, PartialEq)]
pub enum HandoffEvent {
    /// Re-extract this shard-local station's in-flight jobs at the top of
    /// `slot` (the slice is discarded — the takeover shard replays its own
    /// [`HandoffEvent::Absorb`], which carries the original slice).
    Extract {
        /// Slot the extraction originally executed in.
        slot: u64,
        /// Shard-local station that was drained.
        station: StationId,
    },
    /// Re-absorb `slice` onto shard-local station `home` at the top of
    /// `slot`.
    Absorb {
        /// Slot the absorption originally executed in.
        slot: u64,
        /// The extracted jobs, verbatim as originally shipped.
        slice: Box<StationSlice>,
        /// Shard-local takeover station the jobs were re-homed onto.
        home: StationId,
        /// Global request ids in slice order, as originally shipped
        /// (empty when lifecycle tracing is off).
        ids: Vec<u64>,
    },
}

impl HandoffEvent {
    /// The slot this event executes at the top of.
    pub fn slot(&self) -> u64 {
        match self {
            Self::Extract { slot, .. } | Self::Absorb { slot, .. } => *slot,
        }
    }
}

/// How a restarted worker catches back up to the fleet.
#[derive(Debug, Clone)]
pub struct RecoverPlan {
    /// The engine state to restore before replaying. Genesis state replays
    /// the whole run (exact for every policy); a periodic checkpoint
    /// replays only the tail (exact for stateless policies).
    pub base: EngineState,
    /// Journaled `(admission slot, localized request)` pairs with slot
    /// `>= base.next_slot`, in admission order.
    pub journal: Vec<(u64, Request)>,
    /// Handoff operations to re-apply during catch-up, ordered by slot
    /// (ties in recorded order). Each is applied at the top of its slot,
    /// before that slot's journal injections — matching the live driver
    /// loop, where handoffs precede dispatch.
    pub events: Vec<HandoffEvent>,
    /// Replay ticks through this slot inclusive; the next live tick the
    /// driver sends is `through + 1`.
    pub through: u64,
    /// Lifecycle records for slots `>= life_from` are emitted during
    /// catch-up replay; earlier slots were already recorded by the dead
    /// worker before it crashed (its ring outlives it), so re-emitting
    /// them would duplicate the stream. The supervisor sets this to the
    /// first slot the dead worker missed; 0 replays everything.
    pub life_from: u64,
    /// Global ids of the requests already inside `base`, in engine-local
    /// (dense inject) order. The engine re-identifies requests on inject,
    /// so a checkpoint alone cannot recover global ids — the supervisor
    /// mirrors the map and seeds the replacement worker's tracker with
    /// it. Empty for a genesis base (replay rebuilds the map from the
    /// journal, which still carries global ids).
    pub life_ids: Vec<u64>,
}

/// Everything needed to spawn (or respawn) one shard worker, minus the
/// policy (boxed separately because trait objects aren't `Clone`/`Debug`).
#[derive(Debug, Clone)]
pub struct SpawnSpec {
    /// The shard's partition: owned topology, station mapping, bridges.
    pub plan: ShardPlan,
    /// Slot parameters (already carrying the shard-derived seed).
    pub config: SlotConfig,
    /// Bound on the in-flight command queue — the driver blocks
    /// (backpressure) rather than buffering unboundedly.
    pub command_bound: usize,
    /// Attach an [`EngineState`] checkpoint to every Nth tick reply
    /// (0 disables checkpointing; recovery then replays from genesis).
    pub checkpoint_every: u64,
    /// Scripted faults to fire on matching live ticks.
    pub faults: Vec<ShardFault>,
    /// Catch-up plan for a restart; `None` for a cold start.
    pub recover: Option<RecoverPlan>,
    /// Shared progress channel: one [`ShardEvent::Tick`] per executed
    /// slot, plus live-tick errors and the spawn wrapper's death notice.
    pub progress: Sender<ShardProgress>,
    /// Spawn generation stamped on every progress event (0 for the
    /// initial spawn, +1 per restart) so the coordinator can drop events
    /// from stale incarnations.
    pub gen: u64,
    /// Worker-side trace ring, drained by the coordinator at each
    /// watermark fold. `None` when tracing is off (events become no-ops).
    pub ring: Option<TraceRing>,
    /// Wall-clock engine-step timing histogram (live metrics only; never
    /// reaches snapshots or traces).
    pub step_hist: Option<std::sync::Arc<Histogram>>,
    /// Worker-side lifecycle ring, drained by the coordinator at each
    /// watermark fold. `None` when lifecycle tracing is off; records also
    /// require the `lifecycle` cargo feature to be emitted at all.
    pub life_ring: Option<LifecycleRing>,
    /// Always-on work / mailbox-wait / watermark-wait stall probe behind
    /// the stall attribution (live metrics only; never reaches snapshots
    /// or deterministic traces).
    pub stall: Option<StallProbe>,
    /// Fine-grained latency histogram to attach completed-request-id
    /// exemplars to (only consulted while lifecycle tracking is active;
    /// the driver owns the observation counts).
    pub fine_hist: Option<std::sync::Arc<Histogram>>,
    /// Attach a [`PolicyTelemetry`] to every Nth tick reply (0 disables
    /// the learner-telemetry sweep).
    pub telemetry_every: u64,
    /// Attach the policy's learner probe: every tick reply then carries
    /// the arm-lifecycle events, decision record, and LP solve times
    /// recorded during that slot. Off by default — with the probe
    /// detached the policy takes the exact pre-probe code paths.
    pub probe: bool,
}

/// Driver-side handle to one shard worker thread.
#[derive(Debug)]
pub struct ShardHandle {
    /// The shard this handle drives.
    pub shard: usize,
    cmd_tx: SyncSender<ShardCommand>,
    reply_rx: Receiver<ShardReply>,
    join: Option<JoinHandle<()>>,
    abandoned: Arc<AtomicBool>,
}

/// Engine-trace capacity for lifecycle tracking — several events per
/// request, so this covers runs of a few hundred thousand requests.
#[cfg(feature = "lifecycle")]
const LIFE_TRACE_CAP: usize = 1 << 20;

/// Worker-side lifecycle tracking: maps engine-local request ids back to
/// global ones (the engine re-identifies on inject and absorb) and turns
/// engine-trace events into [`LifecycleRecord`]s on the shard's ring.
#[cfg(feature = "lifecycle")]
struct LifeTracker {
    ring: LifecycleRing,
    /// Engine-local request id (dense inject order) -> global id.
    ids: Vec<u64>,
    /// Engine-trace events already consumed.
    seen: usize,
    /// Suppress records below this slot during catch-up replay: the dead
    /// worker already recorded them and its ring outlives it.
    emit_from: u64,
}

#[cfg(feature = "lifecycle")]
impl LifeTracker {
    /// Called immediately before each `engine.inject`: the engine assigns
    /// local ids densely in inject order.
    fn note_inject(&mut self, request: &Request) {
        self.ids.push(request.id().index() as u64);
    }

    /// Called immediately before each `engine.absorb_station`: absorbed
    /// jobs are re-identified in slice order. A length mismatch (ids from
    /// a lifecycle-off peer) maps to `u64::MAX` rather than misattributing.
    fn note_absorb(&mut self, jobs: usize, ids: &[u64]) {
        for i in 0..jobs {
            self.ids.push(ids.get(i).copied().unwrap_or(u64::MAX));
        }
    }

    /// The global id behind an engine-local one.
    fn global(&self, local: mec_workload::request::RequestId) -> u64 {
        self.ids.get(local.index()).copied().unwrap_or(u64::MAX)
    }

    /// Emits records for engine-trace events appended since the last
    /// call, returning the global ids of requests that completed (in
    /// completion order, for latency-exemplar pairing). `Arrived` is
    /// skipped — the driver records the `admit` stage with the routing
    /// context the worker no longer has.
    fn drain(&mut self, engine: &Engine, shard: usize, plan: &ShardPlan) -> Vec<u64> {
        let mut completed = Vec::new();
        let Some(trace) = engine.trace() else {
            return completed;
        };
        let events = trace.events();
        for traced in &events[self.seen..] {
            if traced.slot < self.emit_from {
                continue;
            }
            let no_bs = mec_obs::lifecycle::NO_BS;
            let (request, stage, bs) = match traced.event {
                mec_sim::Event::Arrived { .. } => continue,
                mec_sim::Event::Started {
                    request, station, ..
                } => {
                    let bs = plan
                        .stations
                        .get(station.index())
                        .map_or(no_bs, |global| global.index() as i64);
                    (request, "start", bs)
                }
                mec_sim::Event::Completed { request, .. } => {
                    completed.push(self.global(request));
                    (request, "complete", no_bs)
                }
                mec_sim::Event::Expired { request } => (request, "expire", no_bs),
                mec_sim::Event::Aborted { request } => (request, "abort", no_bs),
            };
            self.ring.life(LifecycleRecord {
                id: self.global(request),
                stage,
                slot: traced.slot,
                shard: shard as i64,
                bs,
            });
        }
        self.seen = events.len();
        completed
    }
}

/// The worker body: runs catch-up (if any), then the command loop.
#[allow(clippy::too_many_lines)]
fn worker_main(
    spec: SpawnSpec,
    mut policy: Box<dyn SlotPolicy + Send>,
    reply_tx: &SyncSender<ShardReply>,
    cmd_rx: Receiver<ShardCommand>,
    abandoned: &AtomicBool,
) {
    let shard = spec.plan.shard;
    let paths = spec.plan.topo.shortest_paths();
    let mut engine = Engine::new(&spec.plan.topo, &paths, Vec::new(), spec.config);
    let mut faults = spec.faults;
    let mut next_live_slot = 0u64;
    let mut seen_latencies = 0usize;
    #[cfg(feature = "lifecycle")]
    let mut life = spec.life_ring.clone().map(|ring| LifeTracker {
        ring,
        ids: spec
            .recover
            .as_ref()
            .map_or_else(Vec::new, |r| r.life_ids.clone()),
        seen: 0,
        emit_from: spec.recover.as_ref().map_or(0, |r| r.life_from),
    });
    #[cfg(feature = "lifecycle")]
    if life.is_some() {
        engine.enable_trace(LIFE_TRACE_CAP);
    }
    // Stall accounting is always on (it feeds live gauges only). The
    // gauges are cumulative across restarts: a replacement worker picks
    // up the totals its predecessor left behind. Three buckets partition
    // the loop time exactly: work (executing leased slots), mailbox-wait
    // (handling inject/extract/absorb traffic), and watermark-wait
    // (blocked on the mailbox until the coordinator extends the lease).
    let mut work_ms = spec.stall.as_ref().map_or(0.0, |p| p.work_ms.get());
    let mut mailbox_ms = spec.stall.as_ref().map_or(0.0, |p| p.mailbox_ms.get());
    let mut watermark_ms = spec.stall.as_ref().map_or(0.0, |p| p.watermark_ms.get());
    let mut idle_since = std::time::Instant::now();
    // Blocked-on-mailbox time accumulated since the previous grant
    // finished; observed once per grant so the histogram measures the
    // per-lease watermark wait (zero for slots inside a multi-slot grant
    // — the whole point of run-ahead).
    let mut grant_wait_ms = 0.0f64;

    if let Some(recover) = spec.recover {
        let start = recover.base.next_slot;
        engine.restore(recover.base);
        let mut replayed = 0u64;
        let mut journal = recover.journal.into_iter().peekable();
        let mut events = recover.events.into_iter().peekable();
        let replay_start = std::time::Instant::now();
        for slot in start..=recover.through {
            // Handoffs recorded at (or somehow before) this slot re-apply
            // first: live handoffs run at the top of a slot, before that
            // slot's dispatch phase.
            while events.peek().is_some_and(|e| e.slot() <= slot) {
                match events.next() {
                    Some(HandoffEvent::Extract { station, .. }) => {
                        engine.extract_station(station);
                    }
                    Some(HandoffEvent::Absorb {
                        slice, home, ids, ..
                    }) => {
                        #[cfg(feature = "lifecycle")]
                        if let Some(life) = life.as_mut() {
                            life.note_absorb(slice.jobs.len(), &ids);
                        }
                        #[cfg(not(feature = "lifecycle"))]
                        let _ = &ids;
                        engine.absorb_station(&slice, home);
                    }
                    None => unreachable!("peeked event vanished"),
                }
            }
            // Entries recorded at or before this slot enter the engine
            // now; `inject` clamps the arrival to the current slot exactly
            // as the original live injection did.
            while journal.peek().is_some_and(|(s, _)| *s <= slot) {
                if let Some((_, request)) = journal.next() {
                    #[cfg(feature = "lifecycle")]
                    if let Some(life) = life.as_mut() {
                        life.note_inject(&request);
                    }
                    engine.inject(request);
                    replayed += 1;
                }
            }
            if let Err(e) = engine.step(policy.as_mut()) {
                let _ = reply_tx.send(ShardReply::Error(format!(
                    "shard {shard} failed during replay of slot {slot}: {e}"
                )));
                return;
            }
        }
        // Leftovers past the catch-up horizon (defensive — the supervisor
        // records handoff events only at slots it has already replayed or
        // will deliver live, so this loop is normally empty).
        for event in events {
            match event {
                HandoffEvent::Extract { station, .. } => {
                    engine.extract_station(station);
                }
                HandoffEvent::Absorb {
                    slice, home, ids, ..
                } => {
                    #[cfg(feature = "lifecycle")]
                    if let Some(life) = life.as_mut() {
                        life.note_absorb(slice.jobs.len(), &ids);
                    }
                    #[cfg(not(feature = "lifecycle"))]
                    let _ = &ids;
                    engine.absorb_station(&slice, home);
                }
            }
        }
        // Arrivals buffered while the shard was down but not yet due for a
        // replayed tick (admission slot past the catch-up horizon).
        for (_, request) in journal {
            #[cfg(feature = "lifecycle")]
            if let Some(life) = life.as_mut() {
                life.note_inject(&request);
            }
            engine.inject(request);
            replayed += 1;
        }
        // Catch-up replay is engine work; count it so the work/wait split
        // stays honest across restarts.
        if let Some(probe) = &spec.stall {
            work_ms += replay_start.elapsed().as_secs_f64() * 1e3;
            probe.work_ms.set(work_ms);
        }
        // Records for slots the dead worker already emitted are skipped
        // (`life_from`); the rest — slots missed during the outage — enter
        // the ring now and drain at the next barrier.
        #[cfg(feature = "lifecycle")]
        if let Some(life) = life.as_mut() {
            life.drain(&engine, shard, &spec.plan);
        }
        next_live_slot = if recover.through >= start {
            recover.through + 1
        } else {
            start
        };
        let metrics = engine.metrics();
        seen_latencies = metrics.latencies_ms().len();
        let recovered = ShardRecovered {
            shard,
            backlog: engine.backlog(),
            total_reward: metrics.total_reward(),
            completed: metrics.completed(),
            expired: metrics.expired(),
            aborted: metrics.aborted(),
            latencies: metrics.latencies_ms().to_vec(),
            replayed,
        };
        if reply_tx.send(ShardReply::Recovered(recovered)).is_err() {
            return;
        }
    }

    // The probe attaches only for live ticks: catch-up replay re-executes
    // slots whose learner events the dead worker already delivered, so
    // probing during replay would double-count rewards downstream.
    if spec.probe {
        policy.set_probe(true);
    }

    for cmd in cmd_rx {
        // Time since the last command finished was spent blocked on the
        // mailbox; it accrues to the watermark bucket when the next grant
        // arrives (mailbox traffic between grants is measured separately).
        grant_wait_ms += idle_since.elapsed().as_secs_f64() * 1e3;
        match cmd {
            ShardCommand::Inject(request) => {
                let handling = std::time::Instant::now();
                #[cfg(feature = "lifecycle")]
                if let Some(life) = life.as_mut() {
                    life.note_inject(&request);
                }
                engine.inject(request);
                if let Some(probe) = &spec.stall {
                    mailbox_ms += handling.elapsed().as_secs_f64() * 1e3;
                    probe.mailbox_ms.set(mailbox_ms);
                }
            }
            ShardCommand::ExtractStation(station) => {
                let handling = std::time::Instant::now();
                let slice = engine.extract_station(station);
                // Report the departing jobs' global ids so the receiving
                // shard can keep attributing lifecycle records to them.
                #[cfg(feature = "lifecycle")]
                let ids = life.as_ref().map_or_else(Vec::new, |l| {
                    slice.jobs.iter().map(|j| l.global(j.id())).collect()
                });
                #[cfg(not(feature = "lifecycle"))]
                let ids = Vec::new();
                if reply_tx
                    .send(ShardReply::Extracted(Box::new(slice), ids))
                    .is_err()
                {
                    return;
                }
                if let Some(probe) = &spec.stall {
                    mailbox_ms += handling.elapsed().as_secs_f64() * 1e3;
                    probe.mailbox_ms.set(mailbox_ms);
                }
            }
            ShardCommand::AbsorbStation(slice, home, ids) => {
                let handling = std::time::Instant::now();
                #[cfg(feature = "lifecycle")]
                if let Some(life) = life.as_mut() {
                    life.note_absorb(slice.jobs.len(), &ids);
                }
                #[cfg(not(feature = "lifecycle"))]
                let _ = &ids;
                engine.absorb_station(&slice, home);
                if let Some(probe) = &spec.stall {
                    mailbox_ms += handling.elapsed().as_secs_f64() * 1e3;
                    probe.mailbox_ms.set(mailbox_ms);
                }
            }
            ShardCommand::Grant { through } => {
                // Everything blocked-on-mailbox since the previous grant
                // completed was spent waiting for the coordinator to
                // advance the watermark and extend the lease.
                if let Some(probe) = &spec.stall {
                    watermark_ms += grant_wait_ms;
                    probe.watermark_ms.set(watermark_ms);
                    probe.wait_hist.observe(grant_wait_ms);
                }
                grant_wait_ms = 0.0;
                // Work covers the whole leased span — engine steps plus
                // checkpoint/telemetry/event assembly — so work + mailbox
                // + watermark partitions the worker's loop time exactly
                // (the report checks the per-shard sum against driver
                // wall time).
                let busy_since = std::time::Instant::now();
                while next_live_slot <= through {
                    mec_obs::prof_scope!("serve.shard_tick");
                    if let Some(pos) = faults.iter().position(|f| f.slot == next_live_slot) {
                        let fault = faults.remove(pos);
                        // Emitted before the fault fires so even a crash
                        // (the panic below) leaves its injection in the
                        // trace.
                        mec_obs::event!(
                            spec.ring,
                            next_live_slot,
                            "fault_injected",
                            shard = shard,
                            fault = match fault.kind {
                                FaultKind::Crash => "crash",
                                FaultKind::Stall => "stall",
                                FaultKind::Slow { .. } => "slow",
                            },
                        );
                        match fault.kind {
                            FaultKind::Crash => {
                                panic!(
                                    "chaos: injected crash in shard {shard} at slot {}",
                                    fault.slot
                                );
                            }
                            FaultKind::Stall => {
                                // Stop reporting without exiting: only the
                                // coordinator's fold deadline can see
                                // this. Park until the supervisor abandons
                                // the handle.
                                while !abandoned.load(Ordering::Acquire) {
                                    std::thread::park_timeout(Duration::from_millis(5));
                                }
                                return;
                            }
                            FaultKind::Slow { ms } => {
                                std::thread::sleep(Duration::from_millis(ms));
                            }
                        }
                    }
                    let report = match mec_obs::span!(spec.step_hist, engine.step(policy.as_mut()))
                    {
                        Ok(report) => report,
                        Err(e) => {
                            let _ = spec.progress.send(ShardProgress {
                                shard,
                                gen: spec.gen,
                                event: ShardEvent::Error(format!("shard {shard}: {e}")),
                            });
                            return;
                        }
                    };
                    next_live_slot = report.slot + 1;
                    let checkpoint = (spec.checkpoint_every > 0
                        && next_live_slot.is_multiple_of(spec.checkpoint_every))
                    .then(|| engine.checkpoint());
                    let telemetry = (spec.telemetry_every > 0
                        && next_live_slot.is_multiple_of(spec.telemetry_every))
                    .then(|| policy.telemetry())
                    .flatten()
                    .map(Box::new);
                    let metrics = engine.metrics();
                    let latencies = metrics.latencies_ms();
                    let new_latencies = latencies[seen_latencies..].to_vec();
                    seen_latencies = latencies.len();
                    #[cfg(feature = "lifecycle")]
                    {
                        let completed_ids = life
                            .as_mut()
                            .map_or_else(Vec::new, |l| l.drain(&engine, shard, &spec.plan));
                        // Latencies append in completion order, so this
                        // slot's tail zips 1:1 with this slot's completed
                        // ids — attach them as histogram exemplars.
                        if let Some(hist) = &spec.fine_hist {
                            for (lat, id) in new_latencies.iter().zip(&completed_ids) {
                                hist.note_exemplar(*lat, *id);
                            }
                        }
                    }
                    let (learner_events, probe_dropped, decision, solve_times_ms) = if spec.probe {
                        (
                            policy.drain_learner_events(),
                            policy.probe_dropped(),
                            policy.last_decision(),
                            policy.drain_solve_times_ms(),
                        )
                    } else {
                        (Vec::new(), 0, None, Vec::new())
                    };
                    let tick = ShardTick {
                        shard,
                        report,
                        backlog: engine.backlog(),
                        total_reward: metrics.total_reward(),
                        completed: metrics.completed(),
                        expired: metrics.expired(),
                        aborted: metrics.aborted(),
                        new_latencies,
                        checkpoint,
                        telemetry,
                        learner_events,
                        probe_dropped,
                        decision,
                        solve_times_ms,
                    };
                    let progressed = spec.progress.send(ShardProgress {
                        shard,
                        gen: spec.gen,
                        event: ShardEvent::Tick(tick),
                    });
                    if progressed.is_err() {
                        return;
                    }
                }
                if let Some(probe) = &spec.stall {
                    work_ms += busy_since.elapsed().as_secs_f64() * 1e3;
                    probe.work_ms.set(work_ms);
                }
            }
            ShardCommand::Finish => {
                let metrics = engine.finish();
                let _ = reply_tx.send(ShardReply::Final(ShardFinal { shard, metrics }));
                return;
            }
        }
        idle_since = std::time::Instant::now();
    }
}

impl ShardHandle {
    /// Spawns the worker thread for `spec`. The worker builds its own
    /// shortest-path table and engine from the (owned) shard topology, so
    /// nothing borrowed crosses the thread boundary.
    ///
    /// # Errors
    ///
    /// Fails only if the OS refuses to spawn the thread.
    pub fn spawn(spec: SpawnSpec, policy: Box<dyn SlotPolicy + Send>) -> std::io::Result<Self> {
        let shard = spec.plan.shard;
        let bound = spec.command_bound.max(1);
        let (cmd_tx, cmd_rx) = std::sync::mpsc::sync_channel::<ShardCommand>(bound);
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel::<ShardReply>(4);
        let abandoned = Arc::new(AtomicBool::new(false));
        let worker_abandoned = Arc::clone(&abandoned);
        let notice = spec.progress.clone();
        let gen = spec.gen;
        let join = std::thread::Builder::new()
            .name(format!("mec-shard-{shard}"))
            .spawn(move || {
                // A panicking worker (chaos crash, engine bug) cannot send
                // anything itself, so the spawn wrapper turns the unwind
                // into a death notice on the progress plane. The channel
                // is FIFO per sender, so the notice always follows every
                // tick the worker streamed before dying — the coordinator
                // can attribute the first missing slot exactly. Normal
                // exits (finish, error, stall-park abandon) send nothing.
                let body = std::panic::AssertUnwindSafe(|| {
                    worker_main(spec, policy, &reply_tx, cmd_rx, &worker_abandoned);
                });
                if std::panic::catch_unwind(body).is_err() {
                    let _ = notice.send(ShardProgress {
                        shard,
                        gen,
                        event: ShardEvent::Died,
                    });
                }
            })?;
        Ok(Self {
            shard,
            cmd_tx,
            reply_rx,
            join: Some(join),
            abandoned,
        })
    }

    /// Convenience cold-start spawn with no chaos, no checkpoints, and no
    /// recovery — the pre-fault-tolerance behaviour. Creates a private
    /// progress channel and returns its receiving end alongside the
    /// handle.
    ///
    /// # Errors
    ///
    /// Fails only if the OS refuses to spawn the thread.
    pub fn spawn_fresh(
        plan: ShardPlan,
        config: SlotConfig,
        policy: Box<dyn SlotPolicy + Send>,
        command_bound: usize,
    ) -> std::io::Result<(Self, Receiver<ShardProgress>)> {
        let (progress, events) = std::sync::mpsc::channel();
        let handle = Self::spawn(
            SpawnSpec {
                plan,
                config,
                command_bound,
                checkpoint_every: 0,
                faults: Vec::new(),
                recover: None,
                progress,
                gen: 0,
                ring: None,
                step_hist: None,
                telemetry_every: 0,
                life_ring: None,
                stall: None,
                fine_hist: None,
                probe: false,
            },
            policy,
        )?;
        Ok((handle, events))
    }

    /// Sends a command; blocks when the bounded queue is full.
    ///
    /// # Errors
    ///
    /// Fails only if the worker already exited (after an error reply).
    pub fn send(&self, cmd: ShardCommand) -> Result<(), SendError<ShardCommand>> {
        self.cmd_tx.send(cmd)
    }

    /// Receives the next reply, blocking until the worker produces one.
    ///
    /// # Errors
    ///
    /// Fails only if the worker exited without replying.
    pub fn recv(&self) -> Result<ShardReply, RecvError> {
        self.reply_rx.recv()
    }

    /// Receives the next reply, giving up after `timeout`. A timeout means
    /// the worker is stalled (or merely slow); the supervisor decides.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if no reply arrived in time;
    /// [`RecvTimeoutError::Disconnected`] if the worker exited without
    /// replying (crash).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<ShardReply, RecvTimeoutError> {
        self.reply_rx.recv_timeout(timeout)
    }

    /// Waits for the worker thread to exit. Dropping the handle without
    /// joining also shuts the worker down (its command channel closes),
    /// but joining makes teardown deterministic.
    pub fn join(mut self) {
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Abandons a worker presumed wedged: signals it to exit if it ever
    /// checks (stalled workers poll the flag), then detaches the thread so
    /// the driver is never blocked on a join that may not return. A truly
    /// wedged thread dies with the process.
    pub fn abandon(mut self) {
        self.abandoned.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            join.thread().unpark();
            drop(join);
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        // Closing cmd_tx ends the worker's command loop; the abandon flag
        // frees a stalled worker from its park loop. Join if possible so
        // panics in the worker are not silently leaked mid-test.
        self.abandoned.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            join.thread().unpark();
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use crate::policy::policy_from_name;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    #[test]
    fn inject_grant_finish_roundtrip() {
        let topo = TopologyBuilder::new(8).seed(3).build();
        let plan = partition(&topo, 1).remove(0);
        let requests = WorkloadBuilder::new(&topo).seed(3).count(20).build();
        let policy = policy_from_name("Greedy", 100, mec_core::SolverKind::default()).unwrap();
        let (handle, events) =
            ShardHandle::spawn_fresh(plan, SlotConfig::default(), policy, 64).unwrap();
        for r in requests {
            handle.send(ShardCommand::Inject(r)).unwrap();
        }
        // A single 100-slot lease streams one tick event per slot.
        handle.send(ShardCommand::Grant { through: 99 }).unwrap();
        let mut backlog = usize::MAX;
        for slot in 0..100 {
            match events.recv().unwrap() {
                ShardProgress {
                    shard: 0,
                    gen: 0,
                    event: ShardEvent::Tick(tick),
                } => {
                    assert_eq!(tick.shard, 0);
                    assert_eq!(tick.report.slot, slot);
                    assert_eq!(tick.checkpoint, None, "checkpointing is off by default");
                    backlog = tick.backlog;
                }
                other => panic!("expected tick event, got {other:?}"),
            }
        }
        assert_eq!(backlog, 0, "20 requests should drain within 100 slots");
        handle.send(ShardCommand::Finish).unwrap();
        match handle.recv().unwrap() {
            ShardReply::Final(fin) => {
                assert_eq!(
                    fin.metrics.completed()
                        + fin.metrics.expired()
                        + fin.metrics.aborted()
                        + fin.metrics.unserved(),
                    20
                );
            }
            other => panic!("expected final reply, got {other:?}"),
        }
        handle.join();
    }

    /// Grants `slots` more slots starting at `from` and collects the tick
    /// stream.
    fn drive(
        handle: &ShardHandle,
        events: &Receiver<ShardProgress>,
        from: u64,
        slots: u64,
    ) -> Vec<ShardTick> {
        handle
            .send(ShardCommand::Grant {
                through: from + slots - 1,
            })
            .unwrap();
        (0..slots)
            .map(|_| match events.recv().unwrap().event {
                ShardEvent::Tick(tick) => tick,
                other => panic!("expected tick event, got {other:?}"),
            })
            .collect()
    }

    #[test]
    fn stale_grants_are_idempotent() {
        let topo = TopologyBuilder::new(6).seed(9).build();
        let plan = partition(&topo, 1).remove(0);
        let policy = policy_from_name("Greedy", 100, mec_core::SolverKind::default()).unwrap();
        let (handle, events) =
            ShardHandle::spawn_fresh(plan, SlotConfig::default(), policy, 16).unwrap();
        let ticks = drive(&handle, &events, 0, 5);
        assert_eq!(ticks.last().unwrap().report.slot, 4);
        // A non-extending lease executes nothing: no stray tick events.
        handle.send(ShardCommand::Grant { through: 3 }).unwrap();
        let extended = drive(&handle, &events, 5, 1);
        assert_eq!(extended[0].report.slot, 5, "slots 0..=4 must not re-run");
        handle.send(ShardCommand::Finish).unwrap();
        handle.join();
    }

    #[test]
    fn periodic_checkpoints_attach_to_interval_ticks() {
        let topo = TopologyBuilder::new(6).seed(7).build();
        let plan = partition(&topo, 1).remove(0);
        let policy = policy_from_name("Greedy", 100, mec_core::SolverKind::default()).unwrap();
        let (progress, events) = std::sync::mpsc::channel();
        let spec = SpawnSpec {
            plan,
            config: SlotConfig::default(),
            command_bound: 16,
            checkpoint_every: 4,
            faults: Vec::new(),
            recover: None,
            progress,
            gen: 0,
            ring: None,
            step_hist: None,
            telemetry_every: 0,
            life_ring: None,
            stall: None,
            fine_hist: None,
            probe: false,
        };
        let handle = ShardHandle::spawn(spec, policy).unwrap();
        let ticks = drive(&handle, &events, 0, 9);
        for tick in &ticks {
            let expect_checkpoint = (tick.report.slot + 1) % 4 == 0;
            assert_eq!(tick.checkpoint.is_some(), expect_checkpoint);
            if let Some(state) = &tick.checkpoint {
                assert_eq!(state.next_slot, tick.report.slot + 1);
            }
        }
        handle.send(ShardCommand::Finish).unwrap();
        handle.join();
    }

    #[test]
    fn recovered_worker_matches_uninterrupted_run() {
        let topo = TopologyBuilder::new(8).seed(11).build();
        let plan = partition(&topo, 1).remove(0);
        let requests = WorkloadBuilder::new(&topo).seed(11).count(15).build();
        let config = SlotConfig::default();

        // Reference: one worker runs 40 slots straight through.
        let reference = {
            let policy = policy_from_name("Greedy", 100, mec_core::SolverKind::default()).unwrap();
            let (handle, events) =
                ShardHandle::spawn_fresh(plan.clone(), config, policy, 64).unwrap();
            for r in requests.clone() {
                handle.send(ShardCommand::Inject(r)).unwrap();
            }
            let ticks = drive(&handle, &events, 0, 40);
            let last = ticks.last().unwrap().clone();
            handle.send(ShardCommand::Finish).unwrap();
            handle.join();
            last
        };

        // Recovery path: replay the same injections from genesis through
        // slot 29, then tick the last 10 live.
        let journal: Vec<(u64, Request)> = requests.iter().map(|r| (0u64, r.clone())).collect();
        let policy = policy_from_name("Greedy", 100, mec_core::SolverKind::default()).unwrap();
        let (progress, events) = std::sync::mpsc::channel();
        let spec = SpawnSpec {
            plan: plan.clone(),
            config,
            command_bound: 64,
            checkpoint_every: 0,
            faults: Vec::new(),
            recover: Some(RecoverPlan {
                base: EngineState::genesis(plan.topo.station_count()),
                journal,
                events: Vec::new(),
                through: 29,
                life_from: 0,
                life_ids: Vec::new(),
            }),
            progress,
            gen: 1,
            ring: None,
            step_hist: None,
            telemetry_every: 0,
            life_ring: None,
            stall: None,
            fine_hist: None,
            probe: false,
        };
        let handle = ShardHandle::spawn(spec, policy).unwrap();
        let recovered = match handle.recv().unwrap() {
            ShardReply::Recovered(r) => r,
            other => panic!("expected recovered reply, got {other:?}"),
        };
        assert_eq!(recovered.replayed, 15);
        let ticks = drive(&handle, &events, 30, 10);
        let last = ticks.last().unwrap();
        assert_eq!(last.report.slot, reference.report.slot);
        assert_eq!(last.backlog, reference.backlog);
        assert_eq!(last.total_reward, reference.total_reward);
        assert_eq!(last.completed, reference.completed);
        handle.send(ShardCommand::Finish).unwrap();
        handle.join();
    }

    #[test]
    fn probed_worker_streams_learner_events_per_tick() {
        let topo = TopologyBuilder::new(8).seed(5).build();
        let plan = partition(&topo, 1).remove(0);
        let requests = WorkloadBuilder::new(&topo).seed(5).count(30).build();
        let policy = policy_from_name("DynamicRR", 100, mec_core::SolverKind::default()).unwrap();
        let (progress, events) = std::sync::mpsc::channel();
        let spec = SpawnSpec {
            plan,
            config: SlotConfig::default(),
            command_bound: 64,
            checkpoint_every: 0,
            faults: Vec::new(),
            recover: None,
            progress,
            gen: 0,
            ring: None,
            step_hist: None,
            telemetry_every: 0,
            life_ring: None,
            stall: None,
            fine_hist: None,
            probe: true,
        };
        let handle = ShardHandle::spawn(spec, policy).unwrap();
        for r in requests {
            handle.send(ShardCommand::Inject(r)).unwrap();
        }
        let ticks = drive(&handle, &events, 0, 20);
        let events: usize = ticks.iter().map(|t| t.learner_events.len()).sum();
        assert!(events > 0, "a probed learner must stream lifecycle events");
        for tick in &ticks {
            let decision = tick
                .decision
                .as_ref()
                .expect("every probed learner tick carries a decision record");
            assert_eq!(decision.slot, tick.report.slot);
            // Each tick's events belong to that tick alone: one Sample per
            // learner update, stamped with the slot's step.
            for ev in &tick.learner_events {
                assert!(ev.value > 0.0, "events carry the arm's threshold value");
            }
        }
        handle.send(ShardCommand::Finish).unwrap();
        handle.join();
    }

    #[test]
    fn unprobed_worker_keeps_learner_fields_empty() {
        let topo = TopologyBuilder::new(8).seed(5).build();
        let plan = partition(&topo, 1).remove(0);
        let policy = policy_from_name("DynamicRR", 100, mec_core::SolverKind::default()).unwrap();
        let (handle, events) =
            ShardHandle::spawn_fresh(plan, SlotConfig::default(), policy, 64).unwrap();
        for tick in drive(&handle, &events, 0, 5) {
            assert!(tick.learner_events.is_empty());
            assert_eq!(tick.probe_dropped, 0);
            assert!(tick.decision.is_none());
            assert!(tick.solve_times_ms.is_empty());
        }
        handle.send(ShardCommand::Finish).unwrap();
        handle.join();
    }

    #[test]
    fn stalled_worker_times_out_and_abandons_cleanly() {
        let topo = TopologyBuilder::new(4).seed(1).build();
        let plan = partition(&topo, 1).remove(0);
        let policy = policy_from_name("Greedy", 100, mec_core::SolverKind::default()).unwrap();
        let (progress, events) = std::sync::mpsc::channel();
        let spec = SpawnSpec {
            plan,
            config: SlotConfig::default(),
            command_bound: 8,
            checkpoint_every: 0,
            faults: vec![ShardFault {
                slot: 2,
                kind: FaultKind::Stall,
            }],
            recover: None,
            progress,
            gen: 0,
            ring: None,
            step_hist: None,
            telemetry_every: 0,
            life_ring: None,
            stall: None,
            fine_hist: None,
            probe: false,
        };
        let handle = ShardHandle::spawn(spec, policy).unwrap();
        drive(&handle, &events, 0, 2);
        handle.send(ShardCommand::Grant { through: 2 }).unwrap();
        match events.recv_timeout(Duration::from_millis(100)) {
            Err(RecvTimeoutError::Timeout) => {}
            other => panic!("expected a stall timeout, got {other:?}"),
        }
        // Abandon returns promptly even though the worker is wedged; a
        // stall-park exit is a normal return, so no death notice appears.
        handle.abandon();
        assert!(matches!(
            events.recv_timeout(Duration::from_millis(500)),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn crashed_worker_sends_a_death_notice_after_its_ticks() {
        let topo = TopologyBuilder::new(4).seed(2).build();
        let plan = partition(&topo, 1).remove(0);
        let policy = policy_from_name("Greedy", 100, mec_core::SolverKind::default()).unwrap();
        let (progress, events) = std::sync::mpsc::channel();
        let spec = SpawnSpec {
            plan,
            config: SlotConfig::default(),
            command_bound: 8,
            checkpoint_every: 0,
            faults: vec![ShardFault {
                slot: 3,
                kind: FaultKind::Crash,
            }],
            recover: None,
            progress,
            gen: 0,
            ring: None,
            step_hist: None,
            telemetry_every: 0,
            life_ring: None,
            stall: None,
            fine_hist: None,
            probe: false,
        };
        let handle = ShardHandle::spawn(spec, policy).unwrap();
        // Lease past the crash slot: ticks 0..=2 stream, then the spawn
        // wrapper's Died notice — strictly after the surviving ticks.
        handle.send(ShardCommand::Grant { through: 5 }).unwrap();
        for slot in 0..3 {
            match events.recv().unwrap().event {
                ShardEvent::Tick(tick) => assert_eq!(tick.report.slot, slot),
                other => panic!("expected tick event, got {other:?}"),
            }
        }
        match events.recv_timeout(Duration::from_secs(5)).unwrap().event {
            ShardEvent::Died => {}
            other => panic!("expected a death notice, got {other:?}"),
        }
        handle.join();
    }
}
