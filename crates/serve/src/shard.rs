//! Shard workers: one thread per shard, each owning a private
//! [`mec_sim::Engine`] plus a boxed policy, driven over bounded channels.
//!
//! The protocol is strictly request/reply at the tick granularity: the
//! driver sends any number of [`ShardCommand::Inject`]s, then exactly one
//! [`ShardCommand::Tick`], and the worker answers with exactly one
//! [`ShardReply::Tick`] (or a [`ShardReply::Error`] if the policy produced
//! an illegal schedule, after which the worker stops). [`ShardCommand::Finish`]
//! flushes terminal accounting and answers [`ShardReply::Final`]. Because
//! the driver always collects replies in shard order before the next tick,
//! every shard executes the same slot in lock step.

use crate::partition::ShardPlan;
use mec_sim::{Engine, Metrics, SlotConfig, SlotPolicy, SlotReport};
use mec_workload::request::Request;
use std::sync::mpsc::{Receiver, RecvError, SendError, SyncSender};
use std::thread::JoinHandle;

/// What the driver sends a shard worker.
#[derive(Debug)]
pub enum ShardCommand {
    /// Feed one admitted (already shard-localized) request to the engine.
    Inject(Request),
    /// Execute exactly one slot and reply with a [`ShardReply::Tick`].
    Tick,
    /// Flush terminal accounting, reply with [`ShardReply::Final`], stop.
    Finish,
}

/// Per-tick report from one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTick {
    /// The reporting shard.
    pub shard: usize,
    /// What happened in the slot just executed.
    pub report: SlotReport,
    /// Waiting + running jobs after the slot — the queue depth admission
    /// control tracks.
    pub backlog: usize,
    /// Cumulative reward collected by this shard.
    pub total_reward: f64,
    /// Cumulative completed count.
    pub completed: usize,
    /// Cumulative expired count.
    pub expired: usize,
    /// Cumulative aborted count.
    pub aborted: usize,
    /// Latency samples recorded since the previous tick, in ms.
    pub new_latencies: Vec<f64>,
}

/// Terminal report from one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFinal {
    /// The reporting shard.
    pub shard: usize,
    /// The shard engine's complete metrics.
    pub metrics: Metrics,
}

/// What a shard worker sends back.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardReply {
    /// Answer to [`ShardCommand::Tick`].
    Tick(ShardTick),
    /// Answer to [`ShardCommand::Finish`]; the worker exits after this.
    Final(ShardFinal),
    /// The policy produced an illegal schedule; the worker exits after
    /// this and ignores further commands.
    Error(String),
}

/// Driver-side handle to one shard worker thread.
#[derive(Debug)]
pub struct ShardHandle {
    /// The shard this handle drives.
    pub shard: usize,
    cmd_tx: SyncSender<ShardCommand>,
    reply_rx: Receiver<ShardReply>,
    join: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// Spawns the worker thread for `plan`. The worker builds its own
    /// shortest-path table and engine from the (owned) shard topology, so
    /// nothing borrowed crosses the thread boundary. `command_bound` caps
    /// the in-flight command queue — the driver blocks (backpressure)
    /// rather than buffering unboundedly if it runs ahead of the worker.
    pub fn spawn(
        plan: ShardPlan,
        config: SlotConfig,
        mut policy: Box<dyn SlotPolicy + Send>,
        command_bound: usize,
    ) -> Self {
        let shard = plan.shard;
        let (cmd_tx, cmd_rx) = std::sync::mpsc::sync_channel::<ShardCommand>(command_bound.max(1));
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel::<ShardReply>(4);
        let join = std::thread::Builder::new()
            .name(format!("mec-shard-{shard}"))
            .spawn(move || {
                let paths = plan.topo.shortest_paths();
                let mut engine = Engine::new(&plan.topo, &paths, Vec::new(), config);
                let mut seen_latencies = 0;
                for cmd in cmd_rx {
                    match cmd {
                        ShardCommand::Inject(request) => {
                            engine.inject(request);
                        }
                        ShardCommand::Tick => {
                            let report = match engine.step(policy.as_mut()) {
                                Ok(report) => report,
                                Err(e) => {
                                    let _ = reply_tx
                                        .send(ShardReply::Error(format!("shard {shard}: {e}")));
                                    return;
                                }
                            };
                            let metrics = engine.metrics();
                            let latencies = metrics.latencies_ms();
                            let new_latencies = latencies[seen_latencies..].to_vec();
                            seen_latencies = latencies.len();
                            let tick = ShardTick {
                                shard,
                                report,
                                backlog: engine.backlog(),
                                total_reward: metrics.total_reward(),
                                completed: metrics.completed(),
                                expired: metrics.expired(),
                                aborted: metrics.aborted(),
                                new_latencies,
                            };
                            if reply_tx.send(ShardReply::Tick(tick)).is_err() {
                                return;
                            }
                        }
                        ShardCommand::Finish => {
                            let metrics = engine.finish();
                            let _ = reply_tx.send(ShardReply::Final(ShardFinal { shard, metrics }));
                            return;
                        }
                    }
                }
            })
            .expect("spawning a shard worker thread");
        Self {
            shard,
            cmd_tx,
            reply_rx,
            join: Some(join),
        }
    }

    /// Sends a command; blocks when the bounded queue is full.
    ///
    /// # Errors
    ///
    /// Fails only if the worker already exited (after an error reply).
    pub fn send(&self, cmd: ShardCommand) -> Result<(), SendError<ShardCommand>> {
        self.cmd_tx.send(cmd)
    }

    /// Receives the next reply, blocking until the worker produces one.
    ///
    /// # Errors
    ///
    /// Fails only if the worker exited without replying.
    pub fn recv(&self) -> Result<ShardReply, RecvError> {
        self.reply_rx.recv()
    }

    /// Waits for the worker thread to exit. Dropping the handle without
    /// joining also shuts the worker down (its command channel closes),
    /// but joining makes teardown deterministic.
    pub fn join(mut self) {
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        // Closing cmd_tx ends the worker's command loop; join if possible
        // so panics in the worker are not silently leaked mid-test.
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use crate::policy::policy_from_name;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    #[test]
    fn inject_tick_finish_roundtrip() {
        let topo = TopologyBuilder::new(8).seed(3).build();
        let plan = partition(&topo, 1).remove(0);
        let requests = WorkloadBuilder::new(&topo).seed(3).count(20).build();
        let policy = policy_from_name("Greedy", 100).unwrap();
        let handle = ShardHandle::spawn(plan, SlotConfig::default(), policy, 64);
        for r in requests {
            handle.send(ShardCommand::Inject(r)).unwrap();
        }
        let mut backlog = usize::MAX;
        for slot in 0..100 {
            handle.send(ShardCommand::Tick).unwrap();
            match handle.recv().unwrap() {
                ShardReply::Tick(tick) => {
                    assert_eq!(tick.shard, 0);
                    assert_eq!(tick.report.slot, slot);
                    backlog = tick.backlog;
                }
                other => panic!("expected tick reply, got {other:?}"),
            }
        }
        assert_eq!(backlog, 0, "20 requests should drain within 100 slots");
        handle.send(ShardCommand::Finish).unwrap();
        match handle.recv().unwrap() {
            ShardReply::Final(fin) => {
                assert_eq!(
                    fin.metrics.completed()
                        + fin.metrics.expired()
                        + fin.metrics.aborted()
                        + fin.metrics.unserved(),
                    20
                );
            }
            other => panic!("expected final reply, got {other:?}"),
        }
        handle.join();
    }
}
