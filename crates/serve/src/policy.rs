//! Name-based policy resolution for the serving runtime.
//!
//! Mirrors the online contenders of the paper's Fig. 4/6 so an operator can
//! pick the scheduling algorithm from the command line.

use mec_core::{DynamicRr, DynamicRrConfig, OnlineGreedy, OnlineHeuKkt, OnlineOcorp, SolverKind};
use mec_sim::SlotPolicy;
use std::fmt;

/// Accepted policy names, in the paper's legend order.
pub const POLICY_NAMES: [&str; 4] = ["DynamicRR", "HeuKKT", "OCORP", "Greedy"];

/// A policy name that matches none of [`POLICY_NAMES`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy {:?}; accepted values: {}",
            self.name,
            POLICY_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// Builds a boxed, thread-movable slot policy from its name.
///
/// `horizon_hint` seeds `DynamicRR`'s bandit schedule; the serving loop is
/// open-ended, so the hint is the driver's best estimate of how many slots
/// the run will last. `solver` picks which simplex backs any LP the policy
/// solves (only `DynamicRR` consults it today; the others ignore it).
///
/// # Errors
///
/// Returns [`UnknownPolicy`] (listing the accepted values) when `name`
/// matches no policy.
pub fn policy_from_name(
    name: &str,
    horizon_hint: u64,
    solver: SolverKind,
) -> Result<Box<dyn SlotPolicy + Send>, UnknownPolicy> {
    Ok(match name {
        "DynamicRR" => Box::new(DynamicRr::new(DynamicRrConfig {
            horizon_hint,
            solver,
            ..Default::default()
        })),
        "HeuKKT" => Box::new(OnlineHeuKkt::new()),
        "OCORP" => Box::new(OnlineOcorp::new()),
        "Greedy" => Box::new(OnlineGreedy::new()),
        other => {
            return Err(UnknownPolicy {
                name: other.to_string(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in POLICY_NAMES {
            assert!(
                policy_from_name(name, 400, SolverKind::default()).is_ok(),
                "{name}"
            );
        }
    }

    #[test]
    fn unknown_name_lists_accepted_values() {
        let err = match policy_from_name("Oracle", 400, SolverKind::default()) {
            Err(err) => err,
            Ok(_) => panic!("Oracle should not resolve"),
        };
        let msg = err.to_string();
        assert!(msg.contains("Oracle"), "{msg}");
        for name in POLICY_NAMES {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }
}
