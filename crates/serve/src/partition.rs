//! Topology sharding: splitting one global MEC network into per-shard
//! sub-topologies that independent slot engines can own.
//!
//! Stations are assigned round-robin by id (`global_id % shards`), which
//! makes request routing O(1) arithmetic (see [`crate::Router`]). Each
//! shard's sub-topology keeps the induced edges between its stations; if
//! that leaves the shard disconnected, deterministic *bridge* links join
//! the components so every station stays reachable (offload decisions
//! inside a shard should never dead-end on an unreachable station).

use mec_topology::station::{BaseStation, StationId};
use mec_topology::units::Latency;
use mec_topology::Topology;

/// One shard's slice of the global topology.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The shard index in `0..shards`.
    pub shard: usize,
    /// Global station ids owned by this shard, ascending; position in this
    /// list is the station's shard-local id.
    pub stations: Vec<StationId>,
    /// The shard-local topology (stations re-indexed densely from 0).
    pub topo: Topology,
    /// Number of bridge edges added to restore connectivity.
    pub bridges: usize,
}

/// Minimal union-find over dense indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// Splits `topo` into `shards` sub-topologies.
///
/// Every global station lands in exactly one shard
/// (`shard = station_id % shards`); shards at the front get the extra
/// station when the division is uneven. Induced edges keep their original
/// delays; bridge edges (added only when the induced sub-graph is
/// disconnected) use the mean edge delay of the global topology so their
/// cost is representative.
///
/// # Panics
///
/// Panics if `shards == 0` or `shards > topo.station_count()` — every
/// shard must own at least one station to host arrivals.
pub fn partition(topo: &Topology, shards: usize) -> Vec<ShardPlan> {
    assert!(shards > 0, "need at least one shard");
    assert!(
        shards <= topo.station_count(),
        "more shards ({shards}) than stations ({})",
        topo.station_count()
    );
    let mean_delay = {
        let edges = topo.edges();
        if edges.is_empty() {
            Latency::ms(1.0)
        } else {
            Latency::ms(
                edges
                    .iter()
                    .map(|e| e.unit_trans_delay().as_ms())
                    .sum::<f64>()
                    / edges.len() as f64,
            )
        }
    };

    (0..shards)
        .map(|shard| {
            // Global ids owned by this shard, ascending.
            let stations: Vec<StationId> = (0..topo.station_count())
                .filter(|g| g % shards == shard)
                .map(StationId)
                .collect();
            // Re-index densely: local id = position in `stations`.
            let locals: Vec<BaseStation> = stations
                .iter()
                .enumerate()
                .map(|(local, &g)| {
                    let bs = topo.station(g);
                    BaseStation::new(StationId(local), bs.capacity(), bs.unit_proc_delay())
                })
                .collect();
            let n = locals.len();
            let mut sub = Topology::new(locals);
            let mut uf = UnionFind::new(n);
            // Induced edges: both endpoints in this shard. With round-robin
            // assignment, global g is local g / shards.
            for edge in topo.edges() {
                let (u, v) = edge.endpoints();
                if u.index() % shards == shard && v.index() % shards == shard {
                    let (lu, lv) = (StationId(u.index() / shards), StationId(v.index() / shards));
                    // Both endpoints are local by construction, so the
                    // add cannot fail; treating a failure as "edge not
                    // induced" keeps this path panic-free regardless.
                    if sub.add_edge(lu, lv, edge.unit_trans_delay()).is_ok() {
                        uf.union(lu.index(), lv.index());
                    }
                }
            }
            // Bridge disconnected components along the local id order.
            let mut bridges = 0;
            for i in 1..n {
                if uf.union(i - 1, i)
                    && sub
                        .add_edge(StationId(i - 1), StationId(i), mean_delay)
                        .is_ok()
                {
                    bridges += 1;
                }
            }
            ShardPlan {
                shard,
                stations,
                topo: sub,
                bridges,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::TopologyBuilder;

    #[test]
    fn every_station_in_exactly_one_shard() {
        let topo = TopologyBuilder::new(23).seed(3).build();
        let plans = partition(&topo, 4);
        let mut seen = vec![0usize; topo.station_count()];
        for plan in &plans {
            for s in &plan.stations {
                seen[s.index()] += 1;
            }
            assert_eq!(plan.stations.len(), plan.topo.station_count());
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn shard_topologies_are_connected() {
        let topo = TopologyBuilder::new(40).seed(9).build();
        for plan in partition(&topo, 8) {
            let paths = plan.topo.shortest_paths();
            for a in plan.topo.station_ids() {
                for b in plan.topo.station_ids() {
                    assert!(
                        paths.delay(a, b).is_some(),
                        "shard {} disconnected between {a} and {b}",
                        plan.shard
                    );
                }
            }
        }
    }

    #[test]
    fn capacities_preserved() {
        let topo = TopologyBuilder::new(12).seed(1).build();
        let plans = partition(&topo, 3);
        for plan in &plans {
            for (local, &global) in plan.stations.iter().enumerate() {
                assert_eq!(
                    plan.topo.station(StationId(local)).capacity(),
                    topo.station(global).capacity()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn too_many_shards_rejected() {
        let topo = TopologyBuilder::new(3).seed(0).build();
        let _ = partition(&topo, 4);
    }
}
