//! # mec-serve
//!
//! A sharded, long-running serving runtime over the `mec-sim` slot engine:
//! the substrate for operating the paper's online offloading policies as a
//! *service* — arrivals stream in continuously, decisions happen per tick,
//! and the operator watches metrics snapshots — instead of replaying a
//! pre-materialized trace to completion.
//!
//! ## Architecture
//!
//! ```text
//!            ┌────────────┐  Inject/Grant{through}  ┌─────────────────────┐
//!  LoadGen ─▶│Coordinator │────────────────────────▶│ Shard 0: Engine+Pol │─┐
//!            │ (admission │   bounded mailboxes     ├─────────────────────┤ │ ShardEvent::Tick
//!            │ + watermark│────────────────────────▶│ Shard 1: Engine+Pol │─┤ (shared progress
//!            │    fold)   │                         ├─────────────────────┤ │  channel, folded
//!            └────────────┘                         │        ...          │ │  in shard order)
//!                  ▲                                └─────────────────────┘ │
//!            ┌────────────┐                          ┌────────────────┐     │
//!            │   Clock    │                          │   Aggregator   │◀────┘
//!            │ (virtual / │                          │ (JSON Snapshot)│
//!            │   paced)   │                          └────────────────┘
//!            └────────────┘
//! ```
//!
//! * [`partition`] splits a global [`mec_topology::Topology`] into
//!   per-shard sub-topologies (round-robin by station id, induced edges,
//!   bridged back to connectivity).
//! * Each shard is an **actor**: a worker thread owning its own
//!   [`mec_sim::Engine`] and a boxed [`mec_sim::SlotPolicy`], with a
//!   **bounded** command mailbox and a shared progress channel.
//! * The [`Router`] maps arrivals to shards by home base station and
//!   applies **deterministic admission control**: when a shard's tracked
//!   backlog reaches `queue_capacity`, new arrivals for it are shed (and
//!   counted) instead of enqueued.
//! * There is no per-slot barrier. The coordinator leases each shard a
//!   span of slots ([`ShardCommand::Grant`], bounded by
//!   [`ServeConfig::epoch_horizon`]); workers execute leased slots
//!   back-to-back, streaming one [`shard::ShardEvent::Tick`] per slot,
//!   while the coordinator folds exactly one slot per phase at the
//!   **watermark** — the slot for which every inbound message has
//!   provably arrived. Same seed + same shards ⇒ byte-identical results
//!   for *every* horizon, including 1 (lockstep). See DESIGN.md §17.
//! * The fan-in aggregator folds per-tick shard reports into periodic
//!   JSON-serializable [`Snapshot`]s at watermark boundaries.
//!
//! ## Fault tolerance
//!
//! The runtime supervises every shard (see `runtime` module docs and
//! DESIGN.md §9): a crashed, stalled, or deadline-missing worker is
//! detected on the progress plane (a death notice, an error event, or a
//! missed fold deadline), its stations are routed around
//! ([`DegradedPolicy`]: buffer / shed / spill), and the shard is restarted
//! with checkpoint-plus-journal replay so recovery is deterministic.
//! Scripted fault injection ([`ChaosSpec`], `mec-serve --chaos`) exercises
//! the whole path reproducibly; [`FaultStats`] in each [`Snapshot`] counts
//! restarts, replayed arrivals, and degraded slots.
//!
//! ## Placement and live reconfiguration
//!
//! With [`ServeConfig::placement`] enabled (`services > 0`), every
//! arrival routes through a [`PlacementPlane`] before shard admission
//! (see DESIGN.md §13): a hit on the home station's service cache
//! proceeds; a miss redirects to the nearest deadline-feasible holder or
//! triggers a capacity-bounded install (LRU/LFU eviction, warm/cold
//! latency charged in slots) that parks the request until the service is
//! resident. [`ServeConfig::ops`] — or `drain:`/`join:`/`leave:`
//! directives in the chaos spec — reconfigures the fleet mid-run:
//! a drain extracts only the drained station's in-flight jobs (a
//! [`mec_sim::StationSlice`]) and ships them to the nearest active
//! station deterministically, so handoff cost is bounded by the moved
//! state and same seed + same ops script still reproduces a
//! byte-identical final snapshot. [`PlacementStats`] in each
//! [`Snapshot`] counts hits, installs, rehomes, and handoffs. With
//! [`ServeConfig::state_dir`] set, arrivals and checkpoints also persist
//! to CRC-framed on-disk journals (see the [`journal`] module) that
//! survive — and report — injected disk faults.
//!
//! ## Observability
//!
//! Attach an [`ObsHub`] (see [`ServeConfig::obs`]) to scrape a live
//! Prometheus-style metrics page via [`mec_obs::MetricsServer`] and — with
//! the `obs` cargo feature — stream a structured JSONL event trace
//! (admission funnel, restarts, fault injections, per-arm learner state).
//! Without a hub the runtime uses a private registry and behaves exactly
//! as before; without the feature, tracing compiles to nothing and
//! same-seed runs stay byte-identical. See DESIGN.md §10.
//!
//! ## Quickstart
//!
//! ```
//! use mec_serve::{serve, LoadGen, ServeConfig};
//! use mec_topology::TopologyBuilder;
//! use mec_workload::WorkloadBuilder;
//!
//! let topo = TopologyBuilder::new(16).seed(7).build();
//! let population = WorkloadBuilder::new(&topo).seed(7).count(500).build();
//! // 2000 requests/second against 50 ms slots → 100 per slot.
//! let load = LoadGen::poisson(population, 2000.0, 50.0, 7);
//! let cfg = ServeConfig {
//!     shards: 4,
//!     ..ServeConfig::default()
//! };
//! let outcome = serve(&topo, load, &cfg, |_snapshot| {}).unwrap();
//! assert_eq!(outcome.final_snapshot.admitted + outcome.final_snapshot.shed, 500);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod clock;
pub mod journal;
pub mod loadgen;
pub mod obs;
pub mod partition;
pub mod placement;
pub mod policy;
pub mod router;
pub mod runtime;
pub mod shard;
pub mod snapshot;

pub use chaos::{
    ChaosParseError, ChaosSpec, DiskFaultKind, DiskFaultSpec, DiskTarget, FaultKind, FaultSpec,
    ShardFault,
};
pub use clock::{Clock, ClockMode};
pub use journal::{DiskIncidents, DiskRecovery, DiskStore, JournalError, JournalWriter, Salvage};
pub use loadgen::LoadGen;
pub use obs::ObsHub;
pub use partition::{partition, ShardPlan};
pub use placement::{PlacementPlane, RouteDecision};
pub use policy::{policy_from_name, UnknownPolicy, POLICY_NAMES};
pub use router::{Admission, DegradedPolicy, Router};
pub use runtime::{serve, FaultConfig, ServeConfig, ServeError, ServeOutcome};
pub use shard::{
    HandoffEvent, RecoverPlan, ShardCommand, ShardEvent, ShardFinal, ShardHandle, ShardProgress,
    ShardRecovered, ShardReply, ShardTick, SpawnSpec,
};
pub use snapshot::{FaultStats, LatencyStats, PlacementStats, Snapshot};
