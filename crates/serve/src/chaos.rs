//! Deterministic chaos injection: scripted shard faults at fixed slots.
//!
//! A [`ChaosSpec`] is a list of faults, each pinned to a `(shard, slot)`
//! pair — crash the worker, stall it past the reply deadline, or slow it
//! down by a fixed delay — optionally with an explicit recovery slot that
//! holds the supervisor's restart until then. Because faults key off the
//! *virtual* slot index (never wall time), a chaos run with a fixed seed
//! is as reproducible as a fault-free one: repeating the identical
//! command yields a byte-identical final snapshot.
//!
//! ## Spec grammar
//!
//! ```text
//! spec      := directive (',' directive)*
//! directive := fault | recover | reconfig | diskfault
//! fault     := kind ':' 'shard=' K '@slot=' N ['@ms=' M]
//! kind      := 'crash' | 'stall' | 'slow'
//! recover   := 'recover' ['shard=' K] '@slot=' N
//! reconfig  := ('join' | 'leave') ':' 'station=' K '@slot=' N
//!            | 'drain' ':' 'station=' K '@slot=' N ['@window=' W]
//! diskfault := ('truncate' | 'corrupt') ':' 'shard=' K '@slot=' N
//!                  '@target=' ('journal' | 'ckpt') ['@bytes=' B]
//!            | 'slowdisk' ':' 'shard=' K '@slot=' N '@ms=' M
//! ```
//!
//! A `recover` directive without a shard attaches to the directly
//! preceding fault. `join`/`leave`/`drain` directives target *stations*
//! (not shards) and become [`mec_placement::ReconfigOp`]s carried in
//! [`ChaosSpec::ops`], merged with any `--ops-script` the run was given.
//! A `drain` without a window hands off immediately-ish (window 0).
//! Disk faults mutate the shard's on-disk journal or checkpoint file at
//! the top of the given slot (`bytes` defaults to 8 — enough to tear a
//! frame header); they require the run to have a `--state-dir`.
//! Examples:
//!
//! ```text
//! crash:shard=1@slot=50,recover@slot=60
//! stall:shard=0@slot=25
//! slow:shard=2@slot=10@ms=200
//! drain:station=3@slot=40@window=10,join:station=3@slot=90
//! corrupt:shard=1@slot=45@target=journal@bytes=5
//! truncate:shard=0@slot=30@target=ckpt
//! slowdisk:shard=1@slot=12@ms=50
//! ```
//!
//! Fault *scripts* are the same grammar spread over lines: one or more
//! directives per line, `#` starts a comment (see [`ChaosSpec::parse_script`]).

use mec_placement::ReconfigOp;
use std::fmt;

/// What a fault does to the shard worker when its slot comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread panics mid-tick (the reply never arrives and the
    /// channel disconnects).
    Crash,
    /// The worker stops replying without exiting — only the supervisor's
    /// reply deadline can detect this.
    Stall,
    /// The worker sleeps `ms` before executing the tick. If `ms` stays
    /// under the reply deadline this merely adds latency; decisions are
    /// unchanged.
    Slow {
        /// Injected delay in milliseconds.
        ms: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Crash => write!(f, "crash"),
            Self::Stall => write!(f, "stall"),
            Self::Slow { ms } => write!(f, "slow({ms}ms)"),
        }
    }
}

/// One scripted fault: shard, slot, kind, and an optional slot before
/// which the supervisor must not restart the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The shard the fault targets.
    pub shard: usize,
    /// The virtual slot whose tick triggers the fault.
    pub slot: u64,
    /// What happens.
    pub kind: FaultKind,
    /// If set, the supervisor holds the restart until this slot (the
    /// chaos script controls the outage length). If unset, the runtime's
    /// configured restart backoff applies.
    pub recover_at: Option<u64>,
}

/// Which persisted file a disk fault mutates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskTarget {
    /// The shard's CRC-framed arrival journal (`shard-K.journal`).
    Journal,
    /// The shard's current checkpoint file (`shard-K.ckpt`).
    Checkpoint,
}

impl fmt::Display for DiskTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Journal => write!(f, "journal"),
            Self::Checkpoint => write!(f, "ckpt"),
        }
    }
}

/// What a disk fault does to the target file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// Chop this many bytes off the end (a torn write).
    Truncate {
        /// Bytes removed from the tail.
        bytes: u64,
    },
    /// Flip bits in the last `bytes` bytes (silent media corruption —
    /// the file length is unchanged, only CRC validation can see it).
    Corrupt {
        /// Bytes XOR-scrambled at the tail.
        bytes: u64,
    },
    /// Delay the shard's next disk operation by `ms` milliseconds
    /// (recoverable: retry-with-backoff rides it out).
    SlowDisk {
        /// Injected latency in milliseconds.
        ms: u64,
    },
}

/// One scripted disk fault, applied by the driver at the top of `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFaultSpec {
    /// The shard whose persisted files are hit.
    pub shard: usize,
    /// The virtual slot at whose top the fault is applied.
    pub slot: u64,
    /// Which file.
    pub target: DiskTarget,
    /// What happens to it.
    pub kind: DiskFaultKind,
}

/// A deterministic fault schedule for one serving run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSpec {
    /// Scripted faults, in spec order.
    pub faults: Vec<FaultSpec>,
    /// Scripted topology reconfiguration ops (`join`/`leave`/`drain`
    /// directives), in spec order; merged with the run's ops script.
    pub ops: Vec<ReconfigOp>,
    /// Scripted disk faults (`truncate`/`corrupt`/`slowdisk` directives),
    /// in spec order; require a state directory.
    pub disk_faults: Vec<DiskFaultSpec>,
}

/// A chaos spec that failed to parse; the message names the offending
/// directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosParseError {
    /// What went wrong, including the directive text.
    pub message: String,
}

impl fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid chaos spec: {}", self.message)
    }
}

impl std::error::Error for ChaosParseError {}

fn err(message: impl Into<String>) -> ChaosParseError {
    ChaosParseError {
        message: message.into(),
    }
}

/// `key=value` fields of one directive after the kind token.
#[derive(Default)]
struct Fields {
    shard: Option<usize>,
    slot: Option<u64>,
    ms: Option<u64>,
    station: Option<usize>,
    window: Option<u64>,
    target: Option<DiskTarget>,
    bytes: Option<u64>,
}

fn parse_fields(directive: &str, parts: &[&str]) -> Result<Fields, ChaosParseError> {
    let mut fields = Fields::default();
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| err(format!("expected key=value, got {part:?} in {directive:?}")))?;
        let parse_u64 = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| err(format!("bad number {v:?} in {directive:?}")))
        };
        match key {
            "shard" => {
                fields.shard = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| err(format!("bad shard {value:?} in {directive:?}")))?,
                )
            }
            "slot" => fields.slot = Some(parse_u64(value)?),
            "ms" => fields.ms = Some(parse_u64(value)?),
            "station" => {
                fields.station = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| err(format!("bad station {value:?} in {directive:?}")))?,
                )
            }
            "window" => fields.window = Some(parse_u64(value)?),
            "target" => {
                fields.target = Some(match value {
                    "journal" => DiskTarget::Journal,
                    "ckpt" => DiskTarget::Checkpoint,
                    other => {
                        return Err(err(format!(
                            "bad target {other:?} (accepted: journal, ckpt) in {directive:?}"
                        )));
                    }
                })
            }
            "bytes" => fields.bytes = Some(parse_u64(value)?),
            other => {
                return Err(err(format!("unknown field {other:?} in {directive:?}")));
            }
        }
    }
    Ok(fields)
}

impl ChaosSpec {
    /// Whether the schedule is empty (no faults to inject, no
    /// reconfiguration ops to apply, no disk faults to deal).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.ops.is_empty() && self.disk_faults.is_empty()
    }

    /// Parses a one-line spec (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns [`ChaosParseError`] naming the first malformed directive —
    /// an unknown kind, a missing `shard`/`slot` field, a `recover` with
    /// nothing to attach to, or a recovery slot at or before its fault.
    pub fn parse(spec: &str) -> Result<Self, ChaosParseError> {
        let mut out = Self::default();
        for directive in spec.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            out.push_directive(directive)?;
        }
        Ok(out)
    }

    /// Parses a multi-line fault script: same grammar, one or more
    /// directives per line, blank lines skipped, `#` starts a comment.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosParseError`] as [`ChaosSpec::parse`] does.
    pub fn parse_script(text: &str) -> Result<Self, ChaosParseError> {
        let mut out = Self::default();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            for directive in line.split(',') {
                let directive = directive.trim();
                if directive.is_empty() {
                    continue;
                }
                out.push_directive(directive)?;
            }
        }
        Ok(out)
    }

    fn push_directive(&mut self, directive: &str) -> Result<(), ChaosParseError> {
        // Normalize the kind separator (':' or a space, as in
        // `recover shard=1@slot=70`) to '@' and split on '@' so every form
        // tokenizes the same way.
        let normalized = directive.replacen(':', "@", 1).replacen(' ', "@", 1);
        let mut parts = normalized.split('@');
        let kind = parts.next().unwrap_or("").trim();
        let rest: Vec<&str> = parts.map(str::trim).filter(|p| !p.is_empty()).collect();
        let fields = parse_fields(directive, &rest)?;
        if kind == "recover" {
            let slot = fields
                .slot
                .ok_or_else(|| err(format!("recover needs @slot=N in {directive:?}")))?;
            let target = match fields.shard {
                Some(shard) => self
                    .faults
                    .iter_mut()
                    .rev()
                    .find(|f| f.shard == shard)
                    .ok_or_else(|| err(format!("recover for shard {shard} has no prior fault")))?,
                None => self
                    .faults
                    .last_mut()
                    .ok_or_else(|| err(format!("{directive:?} has no preceding fault")))?,
            };
            if slot <= target.slot {
                return Err(err(format!(
                    "recovery slot {slot} is not after the fault at slot {} in {directive:?}",
                    target.slot
                )));
            }
            target.recover_at = Some(slot);
            return Ok(());
        }
        if matches!(kind, "truncate" | "corrupt" | "slowdisk") {
            if fields.station.is_some() || fields.window.is_some() {
                return Err(err(format!(
                    "{kind} targets a shard's files, not a station, in {directive:?}"
                )));
            }
            let shard = fields
                .shard
                .ok_or_else(|| err(format!("{kind} needs shard=K in {directive:?}")))?;
            let slot = fields
                .slot
                .ok_or_else(|| err(format!("{kind} needs @slot=N in {directive:?}")))?;
            let (target, disk_kind) = if kind == "slowdisk" {
                if fields.target.is_some() || fields.bytes.is_some() {
                    return Err(err(format!(
                        "slowdisk delays the next disk op; it takes @ms=M, \
                         not target/bytes, in {directive:?}"
                    )));
                }
                let ms = fields
                    .ms
                    .ok_or_else(|| err(format!("slowdisk needs @ms=M in {directive:?}")))?;
                (DiskTarget::Journal, DiskFaultKind::SlowDisk { ms })
            } else {
                if fields.ms.is_some() {
                    return Err(err(format!("{kind} does not take @ms=M in {directive:?}")));
                }
                let target = fields.target.ok_or_else(|| {
                    err(format!(
                        "{kind} needs @target=journal|ckpt in {directive:?}"
                    ))
                })?;
                let bytes = fields.bytes.unwrap_or(8);
                let disk_kind = if kind == "truncate" {
                    DiskFaultKind::Truncate { bytes }
                } else {
                    DiskFaultKind::Corrupt { bytes }
                };
                (target, disk_kind)
            };
            self.disk_faults.push(DiskFaultSpec {
                shard,
                slot,
                target,
                kind: disk_kind,
            });
            return Ok(());
        }
        if matches!(kind, "join" | "leave" | "drain") {
            if fields.shard.is_some() || fields.ms.is_some() || fields.target.is_some() {
                return Err(err(format!(
                    "{kind} targets a station, not a shard, in {directive:?}"
                )));
            }
            let station = fields
                .station
                .ok_or_else(|| err(format!("{kind} needs station=K in {directive:?}")))?;
            let slot = fields
                .slot
                .ok_or_else(|| err(format!("{kind} needs @slot=N in {directive:?}")))?;
            let op = match kind {
                "join" => ReconfigOp::BsJoin { station, slot },
                "leave" => ReconfigOp::BsLeave { station, slot },
                _ => ReconfigOp::BsDrain {
                    station,
                    slot,
                    window: fields.window.unwrap_or(0),
                },
            };
            if kind != "drain" && fields.window.is_some() {
                return Err(err(format!("only drain takes @window=W in {directive:?}")));
            }
            self.ops.push(op);
            return Ok(());
        }
        if fields.station.is_some() || fields.window.is_some() {
            return Err(err(format!(
                "{kind} targets a shard, not a station, in {directive:?}"
            )));
        }
        if fields.target.is_some() || fields.bytes.is_some() {
            return Err(err(format!(
                "{kind} is not a disk fault; target/bytes need truncate, corrupt, \
                 or slowdisk in {directive:?}"
            )));
        }
        let shard = fields
            .shard
            .ok_or_else(|| err(format!("{kind} needs shard=K in {directive:?}")))?;
        let slot = fields
            .slot
            .ok_or_else(|| err(format!("{kind} needs @slot=N in {directive:?}")))?;
        let kind = match kind {
            "crash" => FaultKind::Crash,
            "stall" => FaultKind::Stall,
            "slow" => FaultKind::Slow {
                ms: fields
                    .ms
                    .ok_or_else(|| err(format!("slow needs @ms=M in {directive:?}")))?,
            },
            other => {
                return Err(err(format!(
                    "unknown fault kind {other:?} (accepted: crash, stall, slow, recover, \
                     join, leave, drain, truncate, corrupt, slowdisk)"
                )));
            }
        };
        self.faults.push(FaultSpec {
            shard,
            slot,
            kind,
            recover_at: None,
        });
        Ok(())
    }

    /// The faults targeting one shard, in spec order — what a freshly
    /// spawned worker is armed with.
    pub fn faults_for(&self, shard: usize) -> Vec<ShardFault> {
        self.faults
            .iter()
            .filter(|f| f.shard == shard)
            .map(|f| ShardFault {
                slot: f.slot,
                kind: f.kind,
            })
            .collect()
    }

    /// The largest shard index any fault (thread or disk) names (for
    /// validation against the actual shard count).
    pub fn max_shard(&self) -> Option<usize> {
        self.faults
            .iter()
            .map(|f| f.shard)
            .chain(self.disk_faults.iter().map(|f| f.shard))
            .max()
    }

    /// The disk faults scheduled for the top of `slot`, in spec order.
    pub fn disk_faults_due(&self, slot: u64) -> Vec<DiskFaultSpec> {
        self.disk_faults
            .iter()
            .filter(|f| f.slot == slot)
            .copied()
            .collect()
    }

    /// The largest station id any reconfiguration op names (for
    /// validation against the actual topology).
    pub fn max_station(&self) -> Option<usize> {
        self.ops.iter().map(ReconfigOp::station).max()
    }
}

/// A fault as the worker thread sees it: fire `kind` when about to
/// execute the tick for `slot`. Faults apply to *live* ticks only —
/// catch-up replay after a restart skips them, so a consumed fault cannot
/// re-kill the shard it already killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// The virtual slot whose live tick triggers the fault.
    pub slot: u64,
    /// What happens.
    pub kind: FaultKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_acceptance_spec() {
        let spec = ChaosSpec::parse("crash:shard=1@slot=50,recover@slot=60").unwrap();
        assert_eq!(
            spec.faults,
            vec![FaultSpec {
                shard: 1,
                slot: 50,
                kind: FaultKind::Crash,
                recover_at: Some(60),
            }]
        );
    }

    #[test]
    fn parses_every_kind_and_targeted_recover() {
        let spec = ChaosSpec::parse(
            "crash:shard=1@slot=50,stall:shard=0@slot=25,slow:shard=2@slot=10@ms=200,\
             recover shard=1@slot=70",
        )
        .unwrap();
        assert_eq!(spec.faults.len(), 3);
        assert_eq!(spec.faults[0].recover_at, Some(70));
        assert_eq!(spec.faults[1].kind, FaultKind::Stall);
        assert_eq!(spec.faults[1].recover_at, None);
        assert_eq!(spec.faults[2].kind, FaultKind::Slow { ms: 200 });
        assert_eq!(spec.max_shard(), Some(2));
    }

    #[test]
    fn scripts_allow_comments_and_blank_lines() {
        let script = "\
# take shard 1 down for ten slots
crash:shard=1@slot=50, recover@slot=60

stall:shard=0@slot=100   # detected via the reply deadline
";
        let spec = ChaosSpec::parse_script(script).unwrap();
        assert_eq!(spec.faults.len(), 2);
        assert_eq!(spec.faults[0].recover_at, Some(60));
        assert_eq!(spec.faults[1].kind, FaultKind::Stall);
    }

    #[test]
    fn faults_for_filters_by_shard() {
        let spec = ChaosSpec::parse(
            "crash:shard=1@slot=50,slow:shard=1@slot=80@ms=5,crash:shard=0@slot=9",
        )
        .unwrap();
        let shard1 = spec.faults_for(1);
        assert_eq!(shard1.len(), 2);
        assert_eq!(shard1[0].slot, 50);
        assert_eq!(shard1[1].kind, FaultKind::Slow { ms: 5 });
        assert_eq!(spec.faults_for(2), Vec::new());
    }

    #[test]
    fn parses_reconfig_directives_into_ops() {
        let spec = ChaosSpec::parse(
            "drain:station=3@slot=40@window=10,crash:shard=1@slot=50,\
             join:station=3@slot=90,leave:station=5@slot=120,drain:station=2@slot=7",
        )
        .unwrap();
        assert_eq!(spec.faults.len(), 1);
        assert_eq!(
            spec.ops,
            vec![
                ReconfigOp::BsDrain {
                    station: 3,
                    slot: 40,
                    window: 10
                },
                ReconfigOp::BsJoin {
                    station: 3,
                    slot: 90
                },
                ReconfigOp::BsLeave {
                    station: 5,
                    slot: 120
                },
                ReconfigOp::BsDrain {
                    station: 2,
                    slot: 7,
                    window: 0
                },
            ]
        );
        assert_eq!(spec.max_station(), Some(5));
        assert_eq!(spec.max_shard(), Some(1));
        assert!(!spec.is_empty());
        // An ops-only spec is not empty either.
        assert!(!ChaosSpec::parse("join:station=0@slot=1")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parses_disk_fault_directives() {
        let spec = ChaosSpec::parse(
            "corrupt:shard=1@slot=45@target=journal@bytes=5,\
             truncate:shard=0@slot=30@target=ckpt,\
             slowdisk:shard=2@slot=12@ms=50",
        )
        .unwrap();
        assert!(spec.faults.is_empty());
        assert_eq!(
            spec.disk_faults,
            vec![
                DiskFaultSpec {
                    shard: 1,
                    slot: 45,
                    target: DiskTarget::Journal,
                    kind: DiskFaultKind::Corrupt { bytes: 5 },
                },
                DiskFaultSpec {
                    shard: 0,
                    slot: 30,
                    target: DiskTarget::Checkpoint,
                    kind: DiskFaultKind::Truncate { bytes: 8 },
                },
                DiskFaultSpec {
                    shard: 2,
                    slot: 12,
                    target: DiskTarget::Journal,
                    kind: DiskFaultKind::SlowDisk { ms: 50 },
                },
            ]
        );
        assert_eq!(spec.max_shard(), Some(2));
        assert!(!spec.is_empty());
        assert_eq!(spec.disk_faults_due(45).len(), 1);
        assert_eq!(spec.disk_faults_due(46).len(), 0);
    }

    #[test]
    fn rejects_malformed_directives() {
        for bad in [
            "explode:shard=0@slot=1",
            "crash:shard=0",
            "crash:slot=5",
            "slow:shard=0@slot=1",
            "recover@slot=10",
            "crash:shard=0@slot=50,recover@slot=50",
            "crash:shard=0@slot=abc",
            "recover shard=3@slot=10",
            "crash:shard=0@slot=1@bogus=2",
            "join:shard=1@slot=2",
            "join:station=1",
            "drain:station=1@slot=2@ms=5",
            "leave:station=1@slot=2@window=5",
            "crash:station=1@slot=2",
            "crash:shard=0@slot=1@target=journal",
            "crash:shard=0@slot=1@bytes=4",
            "truncate:shard=0@slot=1",
            "truncate:shard=0@slot=1@target=nvram",
            "corrupt:shard=0@slot=1@target=ckpt@ms=5",
            "corrupt:station=0@slot=1@target=ckpt",
            "slowdisk:shard=0@slot=1",
            "slowdisk:shard=0@slot=1@ms=5@target=journal",
            "join:station=1@slot=2@target=journal",
        ] {
            let res = ChaosSpec::parse(bad);
            assert!(res.is_err(), "{bad:?} should not parse: {res:?}");
        }
    }

    #[test]
    fn empty_specs_are_empty() {
        assert!(ChaosSpec::parse("").unwrap().is_empty());
        assert!(ChaosSpec::parse_script("# nothing\n\n").unwrap().is_empty());
        assert!(ChaosSpec::default().is_empty());
    }
}
