//! Open-loop load generation: re-timing a workload population into a
//! Poisson arrival stream at a configurable request rate.
//!
//! "Open loop" means arrival times are fixed up front and do not react to
//! how fast the fleet drains its queues — exactly the regime where
//! admission control and shedding matter. The generator is deterministic
//! per seed, which the serving runtime's byte-identical-snapshot guarantee
//! builds on.

use mec_workload::request::{Request, RequestId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A finite arrival schedule: requests sorted by arrival slot.
#[derive(Debug, Clone)]
pub struct LoadGen {
    requests: Vec<Request>,
}

impl LoadGen {
    /// Uses the population's own arrival slots, sorted ascending (stable,
    /// so equal-slot requests keep their trace order).
    pub fn replay(mut population: Vec<Request>) -> Self {
        population.sort_by_key(Request::arrival_slot);
        Self {
            requests: reidentify(population),
        }
    }

    /// Re-times the population as a Poisson process at `rps` requests per
    /// second against `slot_ms`-long slots: inter-arrival gaps are drawn
    /// i.i.d. exponential with mean `1 / (rps · slot_ms / 1000)` slots.
    /// Request order (and therefore id order) follows the new schedule.
    ///
    /// # Panics
    ///
    /// Panics if `rps` or `slot_ms` is not positive and finite.
    pub fn poisson(population: Vec<Request>, rps: f64, slot_ms: f64, seed: u64) -> Self {
        assert!(
            rps.is_finite() && rps > 0.0,
            "request rate must be positive"
        );
        assert!(
            slot_ms.is_finite() && slot_ms > 0.0,
            "slot length must be positive"
        );
        let rate_per_slot = rps * slot_ms / 1000.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0_f64;
        let retimed = population
            .into_iter()
            .map(|r| {
                let u: f64 = rng.gen();
                // Inverse-CDF exponential; 1 - u avoids ln(0).
                t += -(1.0 - u).ln() / rate_per_slot;
                Request::new(
                    r.id(),
                    r.home(),
                    t as u64,
                    r.duration_slots(),
                    r.tasks().to_vec(),
                    r.demand().clone(),
                    r.deadline(),
                )
            })
            .collect();
        Self {
            requests: reidentify(retimed),
        }
    }

    /// The schedule, sorted by arrival slot.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of scheduled requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The last arrival slot (0 for an empty schedule).
    pub fn max_arrival(&self) -> u64 {
        self.requests.last().map_or(0, Request::arrival_slot)
    }

    /// Consumes the generator, yielding the schedule.
    pub fn into_requests(self) -> Vec<Request> {
        self.requests
    }
}

/// Re-numbers requests densely in schedule order.
fn reidentify(requests: Vec<Request>) -> Vec<Request> {
    requests
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            Request::new(
                RequestId(i),
                r.home(),
                r.arrival_slot(),
                r.duration_slots(),
                r.tasks().to_vec(),
                r.demand().clone(),
                r.deadline(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn population(n: usize) -> Vec<Request> {
        let topo = TopologyBuilder::new(8).seed(11).build();
        WorkloadBuilder::new(&topo).seed(11).count(n).build()
    }

    #[test]
    fn poisson_is_sorted_dense_and_deterministic() {
        let a = LoadGen::poisson(population(200), 100.0, 50.0, 42);
        let b = LoadGen::poisson(population(200), 100.0, 50.0, 42);
        assert_eq!(a.len(), 200);
        for (i, r) in a.requests().iter().enumerate() {
            assert_eq!(r.id().index(), i);
            if i > 0 {
                assert!(r.arrival_slot() >= a.requests()[i - 1].arrival_slot());
            }
        }
        let arrivals: Vec<u64> = a.requests().iter().map(Request::arrival_slot).collect();
        let arrivals_b: Vec<u64> = b.requests().iter().map(Request::arrival_slot).collect();
        assert_eq!(arrivals, arrivals_b);
    }

    #[test]
    fn rate_controls_the_horizon() {
        // 100 rps on 50 ms slots = 5 requests per slot: 500 requests span
        // roughly 100 slots. A 10x slower rate spans roughly 10x longer.
        let fast = LoadGen::poisson(population(500), 100.0, 50.0, 7);
        let slow = LoadGen::poisson(population(500), 10.0, 50.0, 7);
        assert!(fast.max_arrival() < slow.max_arrival());
        let ratio = slow.max_arrival() as f64 / fast.max_arrival().max(1) as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn replay_keeps_arrivals_sorted() {
        let load = LoadGen::replay(population(100));
        let mut prev = 0;
        for r in load.requests() {
            assert!(r.arrival_slot() >= prev);
            prev = r.arrival_slot();
        }
        assert_eq!(load.len(), 100);
    }
}
