//! Periodic metrics snapshots: the operator-facing view of a serving run.
//!
//! Snapshots are plain data plus a hand-rolled [`Snapshot::to_json`] so
//! they can be tailed as JSON lines without pulling a serialization
//! framework into the runtime. Final snapshots carry no wall-clock
//! fields (`slots_per_sec` is `None`), so two runs with the same seed and
//! shard count serialize byte-identically.

use serde::{Deserialize, Serialize};

/// Order statistics over experienced latencies, in milliseconds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of latency samples recorded so far.
    pub count: usize,
    /// Arithmetic mean (0 when no samples).
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Largest sample.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Computes the statistics from raw samples (any order). Non-finite
    /// samples cannot occur in practice (latencies are sums of finite
    /// delays); `total_cmp` keeps even that case panic-free.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let q = |frac: f64| sorted[((frac * (n - 1) as f64).round()) as usize];
        Self {
            count: n,
            mean_ms: sorted.iter().sum::<f64>() / n as f64,
            p50_ms: q(0.50),
            p95_ms: q(0.95),
            p99_ms: q(0.99),
            max_ms: sorted[n - 1],
        }
    }
}

/// Fault-tolerance counters: what the supervision layer did during the
/// run. All quantities are in virtual slots or event counts — never wall
/// time — so same-seed chaos runs report byte-identical stats.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Shard workers restarted after a crash, stall, or missed deadline.
    pub restarts: u64,
    /// Journal entries re-injected into restarted workers during
    /// catch-up replay.
    pub replayed_arrivals: u64,
    /// Arrivals rerouted to a neighbor shard while their home shard was
    /// down (degraded policy `spill`).
    pub spilled: u64,
    /// Arrivals shed *because* their shard was down (degraded policy
    /// `shed`, or a full journal under `buffer`); also counted in the
    /// snapshot's `shed` total.
    pub shed_while_down: u64,
    /// Shard-slots spent unavailable: each barriered slot a shard missed
    /// adds one.
    pub degraded_slots: u64,
    /// Total outage length across restarts, in slots (restart slot minus
    /// detection slot, summed).
    pub recovery_latency_slots: u64,
    /// Engine checkpoints received from workers.
    pub checkpoints: u64,
    /// Journal entries dropped because a shard's journal hit its cap
    /// (recovery for that shard is best-effort from the oldest retained
    /// entry).
    pub journal_dropped: u64,
    /// Median outage length across successful restarts, in slots (0 when
    /// no restart completed).
    pub recovery_p50_slots: u64,
    /// 95th-percentile outage length across successful restarts, in
    /// slots.
    pub recovery_p95_slots: u64,
    /// Longest outage across successful restarts, in slots.
    pub recovery_max_slots: u64,
    /// On-disk records that failed CRC or structural validation
    /// (journal frames, checkpoint payloads).
    pub disk_corrupt_records: u64,
    /// Bytes truncated past the last intact on-disk record during
    /// torn-write salvage.
    pub disk_salvaged_bytes: u64,
    /// Recoveries that fell back to the authoritative in-memory state
    /// because the disk mirror was corrupt, truncated, or diverged
    /// (includes checkpoint current→prev fallbacks).
    pub disk_fallbacks: u64,
    /// Disk read retries (transient io errors, bounded backoff) plus
    /// write errors absorbed without aborting the run.
    pub disk_retries: u64,
}

impl FaultStats {
    /// Whether nothing fault-related happened (the fault-free fast path).
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// Placement-plane counters: service cache behaviour and live topology
/// reconfiguration over the run. All quantities are event counts keyed to
/// virtual slots, so same-seed runs with the same ops script report
/// byte-identical stats.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlacementStats {
    /// Arrivals whose home station already held their service.
    pub hits: u64,
    /// Arrivals whose home station did not hold their service.
    pub misses: u64,
    /// Misses served by rerouting to the nearest station holding the
    /// service.
    pub redirects: u64,
    /// Arrivals moved to another station because their home was draining
    /// or out of the fleet.
    pub rehomed: u64,
    /// Installs that started warm (service previously hosted there).
    pub installs_warm: u64,
    /// Installs that started cold.
    pub installs_cold: u64,
    /// Residents evicted to make room for installs.
    pub evictions: u64,
    /// Arrivals parked while an install was in flight.
    pub held: u64,
    /// Arrivals shed by the placement plane (no active station, or an
    /// unplaceable service with no holder); also counted in the
    /// snapshot's `shed` total.
    pub placement_shed: u64,
    /// `join` ops applied.
    pub joins: u64,
    /// `leave` ops applied.
    pub leaves: u64,
    /// `drain` ops applied.
    pub drains: u64,
    /// In-flight jobs migrated to takeover stations during handoffs.
    pub migrated: u64,
    /// Drain/leave handoffs completed.
    pub handoffs: u64,
    /// Encoded bytes of station-slice state shipped by handoffs — the
    /// "how much actually moved" half of the bounded-handoff contract.
    pub moved_state_bytes: u64,
}

impl PlacementStats {
    /// Whether the placement plane did nothing (disabled, no ops).
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }

    /// Field-wise difference against an earlier reading — the per-slot
    /// delta fed to the placement metrics/event layer.
    pub fn delta_since(&self, before: &Self) -> Self {
        Self {
            hits: self.hits.saturating_sub(before.hits),
            misses: self.misses.saturating_sub(before.misses),
            redirects: self.redirects.saturating_sub(before.redirects),
            rehomed: self.rehomed.saturating_sub(before.rehomed),
            installs_warm: self.installs_warm.saturating_sub(before.installs_warm),
            installs_cold: self.installs_cold.saturating_sub(before.installs_cold),
            evictions: self.evictions.saturating_sub(before.evictions),
            held: self.held.saturating_sub(before.held),
            placement_shed: self.placement_shed.saturating_sub(before.placement_shed),
            joins: self.joins.saturating_sub(before.joins),
            leaves: self.leaves.saturating_sub(before.leaves),
            drains: self.drains.saturating_sub(before.drains),
            migrated: self.migrated.saturating_sub(before.migrated),
            handoffs: self.handoffs.saturating_sub(before.handoffs),
            moved_state_bytes: self
                .moved_state_bytes
                .saturating_sub(before.moved_state_bytes),
        }
    }
}

/// One aggregated view of the whole serving fleet at a virtual slot.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Virtual slot the snapshot was taken at (slots executed so far).
    pub slot: u64,
    /// Number of shards in the fleet.
    pub shards: usize,
    /// Requests accepted by admission control and injected into a shard.
    pub admitted: u64,
    /// Requests shed because their shard's backlog was at capacity.
    pub shed: u64,
    /// Requests completed (reward credited).
    pub completed: usize,
    /// Requests expired before first service.
    pub expired: usize,
    /// Streams aborted by the continuity requirement.
    pub aborted: usize,
    /// Requests still unfinished when the run ended (final snapshot only).
    pub unserved: usize,
    /// Total reward collected across all shards.
    pub total_reward: f64,
    /// Latency distribution over every served request so far.
    pub latency: LatencyStats,
    /// Per-shard engine backlog (waiting + running jobs), indexed by shard.
    pub queue_depths: Vec<usize>,
    /// Fault-tolerance counters (restarts, replays, degraded routing).
    pub faults: FaultStats,
    /// Placement-plane counters (cache behaviour, reconfiguration).
    pub placement: PlacementStats,
    /// Wall-clock throughput in slots per second. `None` in final
    /// snapshots so deterministic runs serialize identically.
    pub slots_per_sec: Option<f64>,
}

/// Formats an `f64` the way JSON expects: shortest round-trip form, with
/// non-finite values mapped to `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

impl Snapshot {
    /// Serializes the snapshot as a single JSON object (one line, no
    /// trailing newline), suitable for JSON-lines streaming.
    pub fn to_json(&self) -> String {
        let depths = self
            .queue_depths
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let sps = match self.slots_per_sec {
            Some(v) => json_f64(v),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"slot\":{},\"shards\":{},\"admitted\":{},\"shed\":{},",
                "\"completed\":{},\"expired\":{},\"aborted\":{},\"unserved\":{},",
                "\"total_reward\":{},\"latency\":{{\"count\":{},\"mean_ms\":{},",
                "\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{}}},",
                "\"queue_depths\":[{}],\"faults\":{{\"restarts\":{},",
                "\"replayed_arrivals\":{},\"spilled\":{},\"shed_while_down\":{},",
                "\"degraded_slots\":{},\"recovery_latency_slots\":{},",
                "\"checkpoints\":{},\"journal_dropped\":{},",
                "\"recovery_p50_slots\":{},\"recovery_p95_slots\":{},",
                "\"recovery_max_slots\":{},\"disk_corrupt_records\":{},",
                "\"disk_salvaged_bytes\":{},\"disk_fallbacks\":{},",
                "\"disk_retries\":{}}},",
                "\"placement\":{{\"hits\":{},\"misses\":{},\"redirects\":{},",
                "\"rehomed\":{},\"installs_warm\":{},\"installs_cold\":{},",
                "\"evictions\":{},\"held\":{},\"placement_shed\":{},",
                "\"joins\":{},\"leaves\":{},\"drains\":{},\"migrated\":{},",
                "\"handoffs\":{},\"moved_state_bytes\":{}}},",
                "\"slots_per_sec\":{}}}"
            ),
            self.slot,
            self.shards,
            self.admitted,
            self.shed,
            self.completed,
            self.expired,
            self.aborted,
            self.unserved,
            json_f64(self.total_reward),
            self.latency.count,
            json_f64(self.latency.mean_ms),
            json_f64(self.latency.p50_ms),
            json_f64(self.latency.p95_ms),
            json_f64(self.latency.p99_ms),
            json_f64(self.latency.max_ms),
            depths,
            self.faults.restarts,
            self.faults.replayed_arrivals,
            self.faults.spilled,
            self.faults.shed_while_down,
            self.faults.degraded_slots,
            self.faults.recovery_latency_slots,
            self.faults.checkpoints,
            self.faults.journal_dropped,
            self.faults.recovery_p50_slots,
            self.faults.recovery_p95_slots,
            self.faults.recovery_max_slots,
            self.faults.disk_corrupt_records,
            self.faults.disk_salvaged_bytes,
            self.faults.disk_fallbacks,
            self.faults.disk_retries,
            self.placement.hits,
            self.placement.misses,
            self.placement.redirects,
            self.placement.rehomed,
            self.placement.installs_warm,
            self.placement.installs_cold,
            self.placement.evictions,
            self.placement.held,
            self.placement.placement_shed,
            self.placement.joins,
            self.placement.leaves,
            self.placement.drains,
            self.placement.migrated,
            self.placement.handoffs,
            self.placement.moved_state_bytes,
            sps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_yield_zeroes() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ms, 0.0);
        assert_eq!(s.max_ms, 0.0);
    }

    #[test]
    fn percentiles_bracket_the_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert!((s.p50_ms - 50.0).abs() <= 1.0);
        assert!((s.p95_ms - 95.0).abs() <= 1.0);
        assert_eq!(s.max_ms, 100.0);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let snap = Snapshot {
            slot: 100,
            shards: 4,
            admitted: 42,
            shed: 3,
            completed: 30,
            total_reward: 1234.5,
            latency: LatencyStats::from_samples(&[10.0, 20.0, 30.0]),
            queue_depths: vec![1, 2, 3, 4],
            slots_per_sec: None,
            ..Snapshot::default()
        };
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"slot\":100"), "{json}");
        assert!(json.contains("\"queue_depths\":[1,2,3,4]"), "{json}");
        assert!(json.contains("\"slots_per_sec\":null"), "{json}");
        assert!(json.contains("\"total_reward\":1234.5"), "{json}");
        assert!(json.contains("\"faults\":{\"restarts\":0"), "{json}");
        assert!(!json.contains('\n'));
        // Identical snapshots serialize identically.
        assert_eq!(json, snap.clone().to_json());
    }

    #[test]
    fn fault_stats_serialize_and_quiet_detect() {
        let mut snap = Snapshot::default();
        assert!(snap.faults.is_quiet());
        snap.faults.restarts = 2;
        snap.faults.replayed_arrivals = 37;
        snap.faults.recovery_latency_slots = 10;
        snap.faults.recovery_p50_slots = 4;
        snap.faults.recovery_p95_slots = 6;
        snap.faults.recovery_max_slots = 6;
        assert!(!snap.faults.is_quiet());
        let json = snap.to_json();
        assert!(json.contains("\"restarts\":2"), "{json}");
        assert!(json.contains("\"replayed_arrivals\":37"), "{json}");
        assert!(json.contains("\"recovery_latency_slots\":10"), "{json}");
        assert!(json.contains("\"recovery_p50_slots\":4"), "{json}");
        assert!(json.contains("\"recovery_p95_slots\":6"), "{json}");
        assert!(json.contains("\"recovery_max_slots\":6"), "{json}");
        snap.faults.disk_corrupt_records = 3;
        snap.faults.disk_salvaged_bytes = 128;
        snap.faults.disk_fallbacks = 1;
        snap.faults.disk_retries = 2;
        let json = snap.to_json();
        assert!(json.contains("\"disk_corrupt_records\":3"), "{json}");
        assert!(json.contains("\"disk_salvaged_bytes\":128"), "{json}");
        assert!(json.contains("\"disk_fallbacks\":1"), "{json}");
        assert!(json.contains("\"disk_retries\":2"), "{json}");
    }

    #[test]
    fn placement_stats_serialize_and_quiet_detect() {
        let mut snap = Snapshot::default();
        assert!(snap.placement.is_quiet());
        let json = snap.to_json();
        assert!(json.contains("\"placement\":{\"hits\":0"), "{json}");
        snap.placement.hits = 7;
        snap.placement.misses = 2;
        snap.placement.installs_cold = 2;
        snap.placement.drains = 1;
        snap.placement.migrated = 13;
        snap.placement.handoffs = 1;
        snap.placement.moved_state_bytes = 2048;
        assert!(!snap.placement.is_quiet());
        let json = snap.to_json();
        assert!(json.contains("\"hits\":7"), "{json}");
        assert!(json.contains("\"installs_cold\":2"), "{json}");
        assert!(json.contains("\"migrated\":13"), "{json}");
        assert!(json.contains("\"handoffs\":1"), "{json}");
        assert!(json.contains("\"moved_state_bytes\":2048"), "{json}");
    }
}
