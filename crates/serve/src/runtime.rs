//! The serving loop: partition → spawn → route/admit → lock-step ticks →
//! periodic snapshots → drain → final accounting — now under a
//! per-shard **supervisor** that detects worker failure (crash, stall, or
//! missed reply deadline), routes around the outage, and restarts the
//! shard with checkpoint-plus-journal replay.
//!
//! ## Determinism contract
//!
//! With [`ClockMode::Virtual`] and fixed seed, shard count, policy, and
//! load, two runs produce byte-identical final snapshots because every
//! source of ordering is pinned:
//!
//! * admission decisions read only the [`Router`]'s tracked backlog (the
//!   depth each shard reported at the last barriered tick plus injections
//!   since), never live channel state;
//! * every slot is a barrier — all live shards tick, then all replies are
//!   collected **in shard order** before anything else happens;
//! * per-shard engine seeds derive from the base seed and shard index;
//! * the final [`Snapshot`] carries no wall-clock field, and every fault
//!   counter is in virtual slots or event counts.
//!
//! The contract extends to chaos runs: scripted faults key off virtual
//! slots, detection is attributed to the slot whose tick failed, and
//! recovery replays journaled arrivals at their original admission slots —
//! so repeating an identical `--chaos` command reproduces the identical
//! final snapshot.
//!
//! ## Fault model
//!
//! A shard worker can fail three ways, and the supervisor sees each as a
//! distinct signal on the tick request-reply protocol:
//!
//! * **crash** — the worker thread panicked; its channel disconnects;
//! * **stall** — the worker stops replying without exiting; only the
//!   per-slot reply deadline ([`FaultConfig::tick_timeout_ms`]) can see it,
//!   after which the handle is *abandoned* (detached, never joined);
//! * **policy error** — the policy produced an illegal schedule. This is a
//!   bug, not an outage, and stays **fatal** ([`ServeError::Shard`]):
//!   restarting would deterministically replay the same error.
//!
//! While a shard is down its stations are unavailable and arrivals follow
//! the router's [`DegradedPolicy`]. Restart replays the journal on top of
//! the shard's recovery base: the genesis state by default (exact for
//! every policy, including learners with unserializable state), or the
//! latest periodic checkpoint when [`FaultConfig::checkpoint_every`] is
//! nonzero (cheaper catch-up, exact for stateless policies). After
//! [`FaultConfig::max_restarts`] failed restarts the supervisor stops
//! retrying; the shard is revived once more at finish so terminal
//! accounting still covers every admitted request.

use crate::chaos::{ChaosSpec, FaultSpec, ShardFault};
use crate::clock::{Clock, ClockMode};
use crate::loadgen::LoadGen;
use crate::obs::{ObsHub, ObsState};
use crate::partition::{partition, ShardPlan};
use crate::placement::{PlacementPlane, RouteDecision};
use crate::policy::{policy_from_name, UnknownPolicy};
use crate::router::{Admission, DegradedPolicy, Router};
use crate::shard::{RecoverPlan, ShardCommand, ShardHandle, ShardReply, ShardTick, SpawnSpec};
use crate::snapshot::{LatencyStats, Snapshot};
use mec_placement::{OpsLog, PlacementConfig, ReconfigOp};
use mec_sim::{EngineState, Metrics, SlotConfig};
use mec_topology::{StationId, Topology};
use mec_workload::Request;
use std::fmt;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

/// Supervision and recovery knobs.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Per-slot reply deadline in milliseconds; a shard that misses it is
    /// treated as stalled and restarted. 0 disables the deadline (a
    /// wedged worker then blocks the barrier forever).
    pub tick_timeout_ms: u64,
    /// Ask workers for an engine checkpoint every N slots (0 disables;
    /// recovery then replays from genesis, which is exact for every
    /// policy but replays the whole prefix).
    pub checkpoint_every: u64,
    /// What happens to arrivals whose home shard is down.
    pub degraded: DegradedPolicy,
    /// Restart attempts per shard before the supervisor gives up and
    /// leaves the shard down until final accounting.
    pub max_restarts: u64,
    /// Slots to wait before restarting a failed shard when the chaos spec
    /// does not pin an explicit recovery slot (minimum 1).
    pub restart_backoff_slots: u64,
    /// Per-shard journal capacity in entries; older entries are evicted
    /// (counted in [`FaultStats::journal_dropped`], making genesis replay
    /// best-effort).
    pub journal_cap: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            tick_timeout_ms: 5_000,
            checkpoint_every: 0,
            degraded: DegradedPolicy::Buffer,
            max_restarts: 8,
            restart_backoff_slots: 1,
            journal_cap: 1 << 20,
        }
    }
}

/// Knobs for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard workers (each owns one engine and one policy).
    pub shards: usize,
    /// Per-shard backlog cap: arrivals beyond it are shed, not queued.
    pub queue_capacity: usize,
    /// Emit a snapshot every this many slots (0 disables periodic
    /// snapshots; the final snapshot is always produced).
    pub snapshot_every: u64,
    /// Scheduling policy name; see [`crate::POLICY_NAMES`].
    pub policy: String,
    /// Which simplex backs the policy's LP solves (see
    /// [`mec_core::SolverKind`]); `DynamicRR` is the only consumer today.
    pub solver: mec_core::SolverKind,
    /// Slot parameters shared by every shard engine. The per-shard seed is
    /// derived from `sim.seed` and the shard index; `sim.horizon` is
    /// ignored (the serving loop owns the clock).
    pub sim: SlotConfig,
    /// Extra slots allowed after the last arrival before the run is cut
    /// off (remaining jobs count as unserved).
    pub drain_slots: u64,
    /// Virtual (as fast as possible) or wall-clock-paced ticking.
    pub clock: ClockMode,
    /// Supervision, checkpointing, and degraded-routing knobs.
    pub faults: FaultConfig,
    /// Scripted faults to inject (empty for a normal run).
    pub chaos: ChaosSpec,
    /// Observability attachment: a shared metrics registry plus an
    /// optional event-trace sink. `None` (the default) gives the run a
    /// private registry and changes nothing observable.
    pub obs: Option<Arc<ObsHub>>,
    /// Service placement knobs; `services == 0` (the default) disables
    /// placement-aware routing entirely.
    pub placement: PlacementConfig,
    /// Scripted topology reconfiguration ops (joins/leaves/drains),
    /// merged with any ops carried by the chaos spec. Incompatible with
    /// periodic checkpointing ([`FaultConfig::checkpoint_every`] must be
    /// 0 when ops are present): drain handoffs rewrite replay journals,
    /// which is only exact under genesis replay.
    pub ops: OpsLog,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 256,
            snapshot_every: 100,
            policy: "DynamicRR".to_string(),
            solver: mec_core::SolverKind::default(),
            sim: SlotConfig::default(),
            drain_slots: 1_000,
            clock: ClockMode::Virtual,
            faults: FaultConfig::default(),
            chaos: ChaosSpec::default(),
            obs: None,
            placement: PlacementConfig::default(),
            ops: OpsLog::default(),
        }
    }
}

/// Why a serving run could not complete.
#[derive(Debug)]
pub enum ServeError {
    /// The configured policy name resolves to nothing.
    Policy(UnknownPolicy),
    /// A shard's policy produced an illegal schedule (the wrapped message
    /// names the shard and the simulation error). Fatal by design: a
    /// restart would deterministically replay the same error.
    Shard(String),
    /// A shard worker died and could not be revived even for final
    /// accounting.
    WorkerDied(usize),
    /// The OS refused to spawn a worker thread.
    Spawn {
        /// The shard whose worker could not be spawned.
        shard: usize,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The chaos spec is inconsistent with the run configuration (e.g.
    /// targets a shard index beyond the shard count).
    Chaos(String),
    /// The placement/reconfiguration setup is invalid (an op targets a
    /// station the topology lacks, or ops are combined with periodic
    /// checkpointing).
    Reconfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Policy(e) => write!(f, "{e}"),
            Self::Shard(msg) => write!(f, "shard failed: {msg}"),
            Self::WorkerDied(shard) => write!(f, "shard {shard} worker died and stayed dead"),
            Self::Spawn { shard, source } => {
                write!(f, "spawning worker for shard {shard}: {source}")
            }
            Self::Chaos(msg) => write!(f, "chaos spec: {msg}"),
            Self::Reconfig(msg) => write!(f, "reconfiguration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<UnknownPolicy> for ServeError {
    fn from(e: UnknownPolicy) -> Self {
        Self::Policy(e)
    }
}

/// What a completed serving run hands back.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The deterministic end-of-run snapshot (no wall-clock fields).
    pub final_snapshot: Snapshot,
    /// Merged metrics of every shard engine, in shard order.
    pub metrics: Metrics,
    /// Virtual slots executed.
    pub slots_run: u64,
    /// Periodic snapshots emitted through the callback.
    pub snapshots_emitted: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// The normalized ops journal the run applied, as JSONL (empty when
    /// no ops ran). Feeding it back as the ops script of a same-seed run
    /// reproduces the identical final snapshot — that is the
    /// crash-and-replay oracle for live reconfiguration.
    pub ops_journal: String,
}

/// Derives a shard engine's seed from the run seed. The odd multiplier
/// (splitmix64's increment) decorrelates neighbouring shards.
fn shard_seed(base: u64, shard: usize) -> u64 {
    base ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Supervisor view of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardStatus {
    /// Worker live, participating in the barrier.
    Up,
    /// Worker failed at `detected_at`; restart scheduled at `restart_at`.
    Down {
        /// Slot whose tick the worker missed.
        detected_at: u64,
        /// Slot at whose top the supervisor will attempt a restart.
        restart_at: u64,
    },
    /// Supervisor exhausted `max_restarts`; the shard stays down until
    /// final accounting revives it once more.
    Dead {
        /// Slot whose tick the worker missed last.
        detected_at: u64,
    },
}

/// Per-shard supervision state: everything needed to respawn the worker
/// and to keep reporting cumulative counters while it is down.
struct Supervised {
    shard: usize,
    plan: ShardPlan,
    sim: SlotConfig,
    handle: Option<ShardHandle>,
    status: ShardStatus,
    restarts_used: u64,
    /// Scripted faults for this shard not yet consumed by a failure.
    faults_remaining: Vec<ShardFault>,
    /// Full fault specs for this shard (for `recover_at` lookups).
    chaos_faults: Vec<FaultSpec>,
    /// Recovery base: genesis, or the latest adopted checkpoint.
    base: EngineState,
    // Last-known cumulative counters — the snapshot view of a shard that
    // is currently down.
    total_reward: f64,
    completed: usize,
    expired: usize,
    aborted: usize,
    /// Every latency sample this shard has reported (replaced wholesale on
    /// recovery; per-tick deltas from before a crash are unreliable).
    latencies: Vec<f64>,
}

/// The slot at which a failed shard may be restarted: the scripted
/// `recover_at` when the chaos spec pins one for the fault that (by slot)
/// just fired, otherwise detection plus the configured backoff. Always
/// strictly after the detection slot.
fn failure_restart_slot(sup: &Supervised, detected_at: u64, backoff_slots: u64) -> u64 {
    let scripted = sup
        .chaos_faults
        .iter()
        .rfind(|f| f.slot <= detected_at)
        .and_then(|f| f.recover_at);
    match scripted {
        Some(at) => at.max(detected_at + 1),
        None => detected_at + backoff_slots.max(1),
    }
}

/// Transitions a shard to `Down`: abandons the handle (never a blocking
/// join — the worker may be wedged), marks its stations unavailable, and
/// strips faults it already consumed so the restart cannot crash-loop on
/// the same scripted fault. `reason` names the detection signal
/// (`disconnect`, `timeout`, or `send_failed`) for the trace.
fn note_down(
    sup: &mut Supervised,
    router: &mut Router,
    obs: &ObsState,
    detected_at: u64,
    backoff_slots: u64,
    reason: &str,
) {
    if !matches!(sup.status, ShardStatus::Up) {
        return;
    }
    obs.note_detection(detected_at, sup.shard, reason);
    if let Some(handle) = sup.handle.take() {
        handle.abandon();
    }
    router.mark_down(sup.shard);
    let restart_at = failure_restart_slot(sup, detected_at, backoff_slots);
    sup.faults_remaining.retain(|f| f.slot > detected_at);
    sup.status = ShardStatus::Down {
        detected_at,
        restart_at,
    };
}

/// Folds one tick reply into the supervisor state: adopt any checkpoint
/// (pruning the journal it covers), refresh the tracked backlog, cache
/// the cumulative counters, and feed the tick to the metrics layer.
fn apply_tick(sup: &mut Supervised, router: &mut Router, obs: &mut ObsState, tick: &ShardTick) {
    obs.note_tick(tick);
    if let Some(state) = &tick.checkpoint {
        router.prune_journal(sup.shard, state.next_slot);
        sup.base = state.clone();
    }
    router.observe_backlog(sup.shard, tick.backlog);
    sup.total_reward = tick.total_reward;
    sup.completed = tick.completed;
    sup.expired = tick.expired;
    sup.aborted = tick.aborted;
    sup.latencies.extend_from_slice(&tick.new_latencies);
}

/// Restarts a down shard: spawn a fresh worker with the recovery base and
/// the journal tail, wait for its catch-up report, and fold the recovered
/// state in. Returns `Ok(false)` if the replacement worker itself died
/// before reporting (the caller reschedules).
///
/// With `handoff` set the rebuild is part of a drain/leave journal
/// migration, not a failure: the restart budget and every [`FaultStats`]
/// counter stay untouched (a pure reconfiguration run must report quiet
/// fault stats), and the handoff accounting lives in
/// [`crate::PlacementStats`] instead.
///
/// The catch-up wait is a *blocking* receive on purpose: replaying a long
/// prefix legitimately takes many tick intervals, and scripted faults
/// never fire during replay, so the deadline that guards live ticks would
/// only produce false positives here.
#[allow(clippy::too_many_arguments)]
fn restart(
    sup: &mut Supervised,
    router: &mut Router,
    obs: &mut ObsState,
    cfg: &ServeConfig,
    horizon_hint: u64,
    slot: u64,
    detected_at: u64,
    handoff: bool,
) -> Result<bool, ServeError> {
    let shard = sup.shard;
    let policy = policy_from_name(&cfg.policy, horizon_hint, cfg.solver)?;
    let journal = router.journal_since(shard, sup.base.next_slot);
    let spec = SpawnSpec {
        plan: sup.plan.clone(),
        config: sup.sim,
        command_bound: cfg.queue_capacity + 1,
        checkpoint_every: cfg.faults.checkpoint_every,
        faults: sup.faults_remaining.clone(),
        recover: Some(RecoverPlan {
            base: sup.base.clone(),
            journal,
            through: slot.saturating_sub(1),
        }),
        ring: obs.ring(shard),
        step_hist: obs.step_hist(shard),
        telemetry_every: obs.telemetry_every(),
    };
    if !handoff {
        obs.note_restart_attempt(shard);
        sup.restarts_used += 1;
    }
    let handle =
        ShardHandle::spawn(spec, policy).map_err(|source| ServeError::Spawn { shard, source })?;
    match handle.recv() {
        Ok(ShardReply::Recovered(rec)) => {
            if !handoff {
                obs.note_restart_ok(slot, shard, rec.replayed, slot.saturating_sub(detected_at));
            }
            sup.total_reward = rec.total_reward;
            sup.completed = rec.completed;
            sup.expired = rec.expired;
            sup.aborted = rec.aborted;
            sup.latencies = rec.latencies;
            router.observe_backlog(shard, rec.backlog);
            router.mark_up(shard);
            sup.handle = Some(handle);
            sup.status = ShardStatus::Up;
            Ok(true)
        }
        Ok(ShardReply::Error(msg)) => Err(ServeError::Shard(msg)),
        Ok(other) => Err(ServeError::Shard(format!(
            "shard {shard} answered recovery with {other:?}"
        ))),
        Err(_) => {
            obs.note_restart_failed(slot, shard);
            handle.abandon();
            Ok(false)
        }
    }
}

/// Executes one drain/leave handoff at the top of `slot`: pick the
/// takeover station (nearest active, smallest id on delay ties), migrate
/// the departing station's journal entries onto it, deactivate the
/// station in the plane, and rebuild the affected *live* workers by
/// journal replay so their engines match the rewritten journal. Runs
/// before this slot's supervisor restarts, so a Down shard picks the
/// migrated journal up in its ordinary recovery pass.
#[allow(clippy::too_many_arguments)]
fn handoff(
    station: usize,
    leave: bool,
    plane: &mut PlacementPlane,
    router: &mut Router,
    supervised: &mut [Supervised],
    obs: &mut ObsState,
    cfg: &ServeConfig,
    horizon_hint: u64,
    slot: u64,
) -> Result<(), ServeError> {
    let takeover = plane.nearest_active(station);
    let migrated = match takeover {
        Some(to) => router.migrate_station(StationId(station), StationId(to)),
        None => 0,
    };
    plane.apply_handoff(station, leave, migrated);
    obs.note_handoff(slot, station, takeover, migrated, leave);
    if migrated == 0 {
        // Nothing journaled on the departing station: membership already
        // changed, no worker needs rebuilding.
        return Ok(());
    }
    let to = takeover.expect("migrated entries imply a takeover station");
    let from_shard = router.shard_of(StationId(station));
    let to_shard = router.shard_of(StationId(to));
    let mut shards = vec![from_shard];
    if to_shard != from_shard {
        shards.push(to_shard);
    }
    for shard in shards {
        if !matches!(supervised[shard].status, ShardStatus::Up) {
            continue;
        }
        if let Some(handle) = supervised[shard].handle.take() {
            handle.abandon();
        }
        router.mark_down(shard);
        let revived = restart(
            &mut supervised[shard],
            router,
            obs,
            cfg,
            horizon_hint,
            slot,
            slot,
            true,
        )?;
        if !revived {
            // The replacement died before reporting: fall back to the
            // ordinary supervision path (now counted as a failure).
            supervised[shard].status = ShardStatus::Down {
                detected_at: slot,
                restart_at: slot + cfg.faults.restart_backoff_slots.max(1),
            };
        }
    }
    Ok(())
}

/// Per-slot dispatch counters for the admission-funnel event.
#[derive(Default)]
struct DispatchCounts {
    injected: u64,
    buffered: u64,
    spilled: u64,
    shed: u64,
    held: u64,
}

/// Routes one request through the placement plane and, when it proceeds,
/// through shard admission — the single dispatch path both fresh
/// arrivals and released held requests take.
#[allow(clippy::too_many_arguments)]
fn dispatch_one(
    request: Request,
    slot: u64,
    plane: &mut PlacementPlane,
    router: &mut Router,
    supervised: &mut [Supervised],
    obs: &ObsState,
    backoff: u64,
    counts: &mut DispatchCounts,
) {
    let request = match plane.route(request, slot) {
        RouteDecision::Proceed(r) => r,
        RouteDecision::Held { .. } => {
            counts.held += 1;
            return;
        }
        RouteDecision::Shed => {
            router.count_shed(1);
            counts.shed += 1;
            return;
        }
    };
    let holders = plane.holders_of(&request);
    let decision = router.admit_with(
        &request,
        slot,
        if holders.is_empty() {
            None
        } else {
            Some(&holders)
        },
    );
    match &decision {
        Admission::Inject { .. } => counts.injected += 1,
        Admission::Spilled { .. } => counts.spilled += 1,
        Admission::Buffered { .. } => counts.buffered += 1,
        Admission::Shed => counts.shed += 1,
    }
    match decision {
        Admission::Inject { shard, request } | Admission::Spilled { shard, request } => {
            let alive = supervised[shard]
                .handle
                .as_ref()
                .is_some_and(|h| h.send(ShardCommand::Inject(request)).is_ok());
            if !alive {
                // The worker died since its last tick. The request is
                // already journaled, so replay delivers it.
                note_down(
                    &mut supervised[shard],
                    router,
                    obs,
                    slot,
                    backoff,
                    "send_failed",
                );
            }
        }
        Admission::Buffered { .. } | Admission::Shed => {}
    }
}

/// Runs the serving loop to completion over a finite load.
///
/// `on_snapshot` observes each periodic [`Snapshot`] as it is produced
/// (the final snapshot is returned in the outcome, not passed to the
/// callback). The run ends when every arrival has been dispatched and all
/// shard backlogs are empty, or `drain_slots` after the last arrival,
/// whichever comes first.
///
/// # Errors
///
/// * [`ServeError::Policy`] — unknown policy name (checked before any
///   thread spawns);
/// * [`ServeError::Chaos`] — the chaos spec targets a shard that does not
///   exist;
/// * [`ServeError::Shard`] — a policy produced an illegal schedule
///   (fatal: a restart would replay the same error);
/// * [`ServeError::Spawn`] — the OS refused a worker thread;
/// * [`ServeError::WorkerDied`] — a worker died and could not be revived
///   even for final accounting.
///
/// # Panics
///
/// Panics if `cfg.shards` is 0 or exceeds the station count (see
/// [`partition`]).
#[allow(clippy::too_many_lines)]
pub fn serve<F: FnMut(&Snapshot)>(
    topo: &Topology,
    load: LoadGen,
    cfg: &ServeConfig,
    mut on_snapshot: F,
) -> Result<ServeOutcome, ServeError> {
    if let Some(max) = cfg.chaos.max_shard() {
        if max >= cfg.shards {
            return Err(ServeError::Chaos(format!(
                "fault targets shard {max} but the run has only {} shards",
                cfg.shards
            )));
        }
    }
    let mut merged_ops = cfg.ops.clone();
    merged_ops.ops.extend(cfg.chaos.ops.iter().copied());
    if !merged_ops.is_empty() && cfg.faults.checkpoint_every != 0 {
        return Err(ServeError::Reconfig(
            "reconfiguration ops require genesis replay; set checkpoint_every to 0".to_string(),
        ));
    }
    let mut plane =
        PlacementPlane::new(topo, &cfg.placement, merged_ops).map_err(ServeError::Reconfig)?;
    let plans = partition(topo, cfg.shards);
    let mut router = Router::new(cfg.shards, cfg.queue_capacity);
    router.set_station_counts(plans.iter().map(|p| p.topo.station_count()).collect());
    router.set_degraded_policy(cfg.faults.degraded);
    router.set_journal_cap(cfg.faults.journal_cap);
    debug_assert!(router.consistent_with(&plans));

    // The policy's horizon hint: everything a finite load can need.
    let last_arrival = load.max_arrival();
    let horizon_hint = last_arrival.saturating_add(cfg.drain_slots);
    let mut obs = ObsState::new(cfg.shards, cfg.obs.clone());
    mec_obs::event!(
        obs,
        0u64,
        "run_start",
        shards = cfg.shards,
        policy = cfg.policy.as_str(),
        seed = cfg.sim.seed,
        requests = load.len(),
    );
    let mut supervised: Vec<Supervised> = plans
        .into_iter()
        .map(|plan| {
            let shard = plan.shard;
            let policy = policy_from_name(&cfg.policy, horizon_hint, cfg.solver)?;
            let sim = SlotConfig {
                seed: shard_seed(cfg.sim.seed, shard),
                horizon: horizon_hint,
                ..cfg.sim
            };
            let base = EngineState::genesis(plan.topo.station_count());
            let faults_remaining = cfg.chaos.faults_for(shard);
            let chaos_faults: Vec<FaultSpec> = cfg
                .chaos
                .faults
                .iter()
                .filter(|f| f.shard == shard)
                .copied()
                .collect();
            // Bound = worst-case commands between barriers: one slot's
            // admissions (≤ queue capacity) plus the tick itself.
            let spec = SpawnSpec {
                plan: plan.clone(),
                config: sim,
                command_bound: cfg.queue_capacity + 1,
                checkpoint_every: cfg.faults.checkpoint_every,
                faults: faults_remaining.clone(),
                recover: None,
                ring: obs.ring(shard),
                step_hist: obs.step_hist(shard),
                telemetry_every: obs.telemetry_every(),
            };
            let handle = ShardHandle::spawn(spec, policy)
                .map_err(|source| ServeError::Spawn { shard, source })?;
            Ok(Supervised {
                shard,
                plan,
                sim,
                handle: Some(handle),
                status: ShardStatus::Up,
                restarts_used: 0,
                faults_remaining,
                chaos_faults,
                base,
                total_reward: 0.0,
                completed: 0,
                expired: 0,
                aborted: 0,
                latencies: Vec::new(),
            })
        })
        .collect::<Result<_, ServeError>>()?;

    let mut clock = Clock::new(cfg.clock);
    let mut arrivals = load.into_requests().into_iter().peekable();
    let mut snapshots_emitted = 0;
    let backoff = cfg.faults.restart_backoff_slots;
    // At least one slot past the last arrival (and past the last
    // scheduled reconfiguration effect), so every request is dispatched
    // (and counted as admitted or shed) even with drain 0.
    let hard_stop = last_arrival
        .max(plane.last_op_effect_slot())
        .saturating_add(cfg.drain_slots.max(1));

    loop {
        let slot = clock.ticks();

        // Reconfiguration phase: drain handoffs whose window expired, then
        // ops scheduled for this slot. This runs before the supervisor's
        // restart pass so a Down shard's ordinary recovery already sees
        // the migrated journal.
        if plane.is_live() {
            for station in plane.drains_due(slot) {
                handoff(
                    station,
                    false,
                    &mut plane,
                    &mut router,
                    &mut supervised,
                    &mut obs,
                    cfg,
                    horizon_hint,
                    slot,
                )?;
            }
            for op in plane.ops_due(slot) {
                obs.note_reconfig(slot, &op);
                match op {
                    ReconfigOp::BsJoin { station, .. } => plane.apply_join(station),
                    ReconfigOp::BsLeave { station, .. } => handoff(
                        station,
                        true,
                        &mut plane,
                        &mut router,
                        &mut supervised,
                        &mut obs,
                        cfg,
                        horizon_hint,
                        slot,
                    )?,
                    ReconfigOp::BsDrain {
                        station,
                        slot: at,
                        window,
                    } => plane.apply_drain(station, at.saturating_add(window)),
                }
            }
        }

        // Restart shards whose backoff (or scripted recovery slot) is due.
        // This runs before dispatch, so the journal holds only arrivals
        // from slots before `slot` and catch-up through `slot - 1` leaves
        // the shard exactly at the barrier.
        for sup in &mut supervised {
            let ShardStatus::Down {
                detected_at,
                restart_at,
            } = sup.status
            else {
                continue;
            };
            if restart_at > slot {
                continue;
            }
            if sup.restarts_used >= cfg.faults.max_restarts {
                sup.status = ShardStatus::Dead { detected_at };
                continue;
            }
            let revived = restart(
                sup,
                &mut router,
                &mut obs,
                cfg,
                horizon_hint,
                slot,
                detected_at,
                false,
            )?;
            if !revived {
                sup.status = ShardStatus::Down {
                    detected_at,
                    restart_at: slot + backoff.max(1),
                };
            }
        }

        // Installs that finished their latency window become resident
        // before this slot's dispatch, so their held requests hit.
        for done in plane.complete_installs(slot) {
            obs.note_install_done(slot, &done);
        }

        // Dispatch requests released from install holds, then every
        // arrival due by this slot — all through the placement plane and
        // admission, counting each outcome for the admission-funnel event.
        let shed_down_before = router.shed_while_down();
        let place_before = plane.stats().clone();
        let mut counts = DispatchCounts::default();
        {
            mec_obs::prof_slot!(slot);
            mec_obs::prof_scope!("serve.dispatch");
            for request in plane.release_due(slot) {
                dispatch_one(
                    request,
                    slot,
                    &mut plane,
                    &mut router,
                    &mut supervised,
                    &obs,
                    backoff,
                    &mut counts,
                );
            }
            while arrivals.peek().is_some_and(|r| r.arrival_slot() <= slot) {
                let Some(request) = arrivals.next() else {
                    break;
                };
                dispatch_one(
                    request,
                    slot,
                    &mut plane,
                    &mut router,
                    &mut supervised,
                    &obs,
                    backoff,
                    &mut counts,
                );
            }
        }
        let shed_down = router.shed_while_down() - shed_down_before;
        obs.note_admission(
            slot,
            counts.injected,
            counts.buffered,
            counts.spilled,
            counts.shed.saturating_sub(shed_down),
            shed_down,
            counts.held,
        );
        let place_delta = plane.stats().delta_since(&place_before);
        obs.note_placement(slot, &place_delta);

        // Barriered tick: all live shards advance one slot, replies
        // collected in shard order.
        clock.tick();
        {
            mec_obs::prof_scope!("serve.barrier");
            let mut ticked = vec![false; supervised.len()];
            for i in 0..supervised.len() {
                if supervised[i].status != ShardStatus::Up {
                    continue;
                }
                let alive = supervised[i]
                    .handle
                    .as_ref()
                    .is_some_and(|h| h.send(ShardCommand::Tick).is_ok());
                if alive {
                    ticked[i] = true;
                } else {
                    note_down(
                        &mut supervised[i],
                        &mut router,
                        &obs,
                        slot,
                        backoff,
                        "send_failed",
                    );
                }
            }
            let deadline = cfg.faults.tick_timeout_ms;
            for i in 0..supervised.len() {
                if !ticked[i] {
                    continue;
                }
                // A missing reply carries its detection signal: a closed
                // channel is a crash, a missed deadline is a stall.
                let (reply, fail_reason) = match &supervised[i].handle {
                    Some(handle) if deadline > 0 => {
                        match handle.recv_timeout(Duration::from_millis(deadline)) {
                            Ok(reply) => (Some(reply), ""),
                            Err(RecvTimeoutError::Timeout) => (None, "timeout"),
                            Err(RecvTimeoutError::Disconnected) => (None, "disconnect"),
                        }
                    }
                    Some(handle) => (handle.recv().ok(), "disconnect"),
                    None => (None, "send_failed"),
                };
                match reply {
                    Some(ShardReply::Tick(tick)) => {
                        apply_tick(&mut supervised[i], &mut router, &mut obs, &tick);
                    }
                    Some(ShardReply::Error(msg)) => return Err(ServeError::Shard(msg)),
                    Some(other) => {
                        return Err(ServeError::Shard(format!(
                            "shard {} answered Tick with {other:?}",
                            supervised[i].shard
                        )))
                    }
                    None => note_down(
                        &mut supervised[i],
                        &mut router,
                        &obs,
                        slot,
                        backoff,
                        fail_reason,
                    ),
                }
            }
            for sup in &supervised {
                if sup.status != ShardStatus::Up {
                    obs.note_degraded(sup.shard);
                }
            }
        }

        let slots_done = clock.ticks();
        obs.set_slot(slots_done);
        // Worker-side events join the trace here, at the barrier, in
        // shard order — the ordering half of the determinism contract.
        obs.drain_rings();
        if cfg.snapshot_every > 0 && slots_done.is_multiple_of(cfg.snapshot_every) {
            mec_obs::prof_scope!("serve.snapshot");
            obs.sync_router(&router);
            obs.sync_placement(plane.state());
            let samples: Vec<f64> = supervised
                .iter()
                .flat_map(|s| s.latencies.iter().copied())
                .collect();
            let snap = Snapshot {
                slot: slots_done,
                shards: cfg.shards,
                admitted: router.admitted(),
                shed: router.shed(),
                completed: supervised.iter().map(|s| s.completed).sum(),
                expired: supervised.iter().map(|s| s.expired).sum(),
                aborted: supervised.iter().map(|s| s.aborted).sum(),
                unserved: 0,
                total_reward: supervised.iter().map(|s| s.total_reward).sum(),
                latency: LatencyStats::from_samples(&samples),
                queue_depths: router.backlogs().to_vec(),
                faults: obs.fault_stats(),
                placement: plane.stats().clone(),
                slots_per_sec: Some(slots_done as f64 / clock.elapsed_secs().max(1e-9)),
            };
            on_snapshot(&snap);
            snapshots_emitted += 1;
        }

        let drained = arrivals.peek().is_none()
            && router.backlogs().iter().all(|&b| b == 0)
            && !plane.has_held()
            && plane.ops_exhausted()
            && !plane.has_pending_drains();
        if drained || slots_done >= hard_stop {
            break;
        }
    }

    // The hard stop can cut the run off with requests still parked behind
    // in-flight installs; they count as shed so admitted + shed covers
    // every arrival.
    let abandoned = plane.abandon_held();
    if abandoned > 0 {
        router.count_shed(abandoned);
    }

    // Terminal accounting, merged in shard order. Down (or given-up)
    // shards are revived with a catch-up through the final slot so every
    // admitted request appears in exactly one shard's metrics; a worker
    // that dies on Finish gets one more revival. Failures here do not
    // leave poisoned channels behind: every handle's Drop abandons-then-
    // joins, so teardown completes even when one shard already exited.
    let end_slot = clock.ticks();
    let mut metrics = Metrics::new();
    for sup in &mut supervised {
        let shard = sup.shard;
        let mut revivals = 0u32;
        loop {
            if sup.status != ShardStatus::Up {
                let detected_at = match sup.status {
                    ShardStatus::Down { detected_at, .. } | ShardStatus::Dead { detected_at } => {
                        detected_at
                    }
                    ShardStatus::Up => end_slot,
                };
                revivals += 1;
                if revivals > 2 {
                    return Err(ServeError::WorkerDied(shard));
                }
                let revived = restart(
                    sup,
                    &mut router,
                    &mut obs,
                    cfg,
                    horizon_hint,
                    end_slot,
                    detected_at,
                    false,
                )?;
                if !revived {
                    continue;
                }
            }
            let Some(handle) = sup.handle.take() else {
                return Err(ServeError::WorkerDied(shard));
            };
            if handle.send(ShardCommand::Finish).is_err() {
                handle.abandon();
                router.mark_down(shard);
                sup.status = ShardStatus::Down {
                    detected_at: end_slot,
                    restart_at: end_slot,
                };
                continue;
            }
            let reply = if deadline_for(cfg) > 0 {
                handle
                    .recv_timeout(Duration::from_millis(deadline_for(cfg)))
                    .ok()
            } else {
                handle.recv().ok()
            };
            match reply {
                Some(ShardReply::Final(fin)) => {
                    metrics.merge(&fin.metrics);
                    handle.join();
                    break;
                }
                Some(ShardReply::Error(msg)) => return Err(ServeError::Shard(msg)),
                Some(other) => {
                    return Err(ServeError::Shard(format!(
                        "shard {shard} answered Finish with {other:?}"
                    )))
                }
                None => {
                    handle.abandon();
                    router.mark_down(shard);
                    sup.status = ShardStatus::Down {
                        detected_at: end_slot,
                        restart_at: end_slot,
                    };
                }
            }
        }
    }
    let wall_secs = clock.elapsed_secs();
    drop(supervised);

    obs.sync_router(&router);
    obs.sync_placement(plane.state());
    obs.drain_rings();
    let final_snapshot = Snapshot {
        slot: end_slot,
        shards: cfg.shards,
        admitted: router.admitted(),
        shed: router.shed(),
        completed: metrics.completed(),
        expired: metrics.expired(),
        aborted: metrics.aborted(),
        unserved: metrics.unserved(),
        total_reward: metrics.total_reward(),
        latency: LatencyStats::from_samples(metrics.latencies_ms()),
        queue_depths: router.backlogs().to_vec(),
        faults: obs.fault_stats(),
        placement: plane.stats().clone(),
        slots_per_sec: None,
    };
    mec_obs::event!(
        obs,
        end_slot,
        "run_end",
        admitted = final_snapshot.admitted,
        shed = final_snapshot.shed,
        completed = final_snapshot.completed,
        expired = final_snapshot.expired,
        aborted = final_snapshot.aborted,
        unserved = final_snapshot.unserved,
        total_reward = final_snapshot.total_reward,
    );
    obs.flush();
    Ok(ServeOutcome {
        final_snapshot,
        metrics,
        slots_run: end_slot,
        snapshots_emitted,
        wall_secs,
        ops_journal: if plane.is_live() {
            plane.ops_journal()
        } else {
            String::new()
        },
    })
}

/// The per-slot reply deadline in milliseconds (0 = none).
const fn deadline_for(cfg: &ServeConfig) -> u64 {
    cfg.faults.tick_timeout_ms
}
