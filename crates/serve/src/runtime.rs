//! The serving loop: partition → spawn actors → route/admit →
//! epoch-leased ticks folded at a watermark → periodic snapshots → drain
//! → final accounting — under a per-shard **supervisor** that detects
//! worker failure (crash, stall, or missed fold deadline), routes around
//! the outage, and restarts the shard with checkpoint-plus-journal
//! replay.
//!
//! ## The epoch/watermark protocol
//!
//! Each shard is an actor with a bounded command mailbox; the coordinator
//! never waits for a shard inside a slot. Instead it issues run-ahead
//! **leases** ([`ShardCommand::Grant`]): a shard may execute every slot up
//! to the granted horizon back-to-back, streaming one tick report per
//! slot onto a shared progress channel. The coordinator's **watermark**
//! advances one slot at a time: phase `t` (disk faults, reconfig,
//! restarts, handoffs, dispatch) runs only after every live shard's slot
//! `t-1` report has been folded, and the fold for slot `t` consumes
//! reports **in shard order** regardless of the wall-clock order they
//! arrived in. A lease may cover future slots only when the leased span
//! is provably inert for the coordinator — no arrivals due, no placement
//! or reconfig work scheduled, no pending handoffs, every shard up, and
//! never across a scripted fault slot — so every cross-shard message for
//! slot `t` is already in a shard's mailbox (FIFO, ahead of the grant
//! covering `t`) before the shard may execute `t`. That makes the
//! run-ahead invisible to the simulation: snapshots, traces, and final
//! accounting are byte-identical for any epoch horizon, including
//! horizon 1 (lockstep).
//!
//! ## Determinism contract
//!
//! With [`ClockMode::Virtual`] and fixed seed, shard count, policy, and
//! load, two runs produce byte-identical final snapshots because every
//! source of ordering is pinned:
//!
//! * admission decisions read only the [`Router`]'s tracked backlog (the
//!   depth each shard reported at its last folded tick plus injections
//!   since), never live channel state;
//! * every slot is folded at the watermark — all live shards' reports
//!   for the slot are consumed **in shard order** before anything else
//!   happens, and worker-side trace/lifecycle records are held back
//!   until the watermark passes their slot;
//! * per-shard engine seeds derive from the base seed and shard index;
//! * the final [`Snapshot`] carries no wall-clock field, and every fault
//!   counter is in virtual slots or event counts.
//!
//! The contract extends to chaos runs: scripted faults key off virtual
//! slots (leases never cross a pending fault slot, so faults fire exactly
//! when lockstep would have fired them), detection is attributed to the
//! slot whose report is missing, and recovery replays journaled arrivals
//! at their original admission slots — so repeating an identical
//! `--chaos` command reproduces the identical final snapshot.
//!
//! ## Fault model
//!
//! A shard worker can fail three ways, and the supervisor sees each as a
//! distinct signal on the progress plane:
//!
//! * **crash** — the worker thread panicked; its spawn wrapper posts a
//!   death notice ([`crate::ShardEvent::Died`]) behind any reports it
//!   already streamed, so the first missing slot is attributed exactly;
//! * **stall** — the worker stops reporting without exiting; only the
//!   fold deadline ([`FaultConfig::tick_timeout_ms`]) can see it, after
//!   which the handle is *abandoned* (detached, never joined);
//! * **policy error** — the policy produced an illegal schedule
//!   ([`crate::ShardEvent::Error`]). This is a bug, not an outage, and
//!   stays **fatal** ([`ServeError::Shard`]): restarting would
//!   deterministically replay the same error.
//!
//! While a shard is down its stations are unavailable and arrivals follow
//! the router's [`DegradedPolicy`]. Restart replays the journal on top of
//! the shard's recovery base: the genesis state by default (exact for
//! every policy, including learners with unserializable state), or the
//! latest periodic checkpoint when [`FaultConfig::checkpoint_every`] is
//! nonzero (cheaper catch-up, exact for stateless policies). After
//! [`FaultConfig::max_restarts`] failed restarts the supervisor stops
//! retrying; the shard is revived once more at finish so terminal
//! accounting still covers every admitted request.
//!
//! Drain/leave handoffs are **splittable**: only the departing station's
//! in-flight jobs move (a [`mec_sim::StationSlice`]), and the move is
//! recorded as replay events on the shards involved, so handoffs compose
//! with periodic checkpoints instead of forcing genesis replay. With
//! [`ServeConfig::state_dir`] set, arrival journals and checkpoints
//! additionally persist to CRC-framed files (see [`crate::journal`])
//! that are read back and verified against the in-memory truth on every
//! recovery — injected disk faults (`truncate:` / `corrupt:` /
//! `slowdisk:`) move recovery counters, never the simulation outcome.

use crate::chaos::{ChaosSpec, FaultSpec, ShardFault};
use crate::clock::{Clock, ClockMode};
use crate::journal::{self, DiskStore};
use crate::loadgen::LoadGen;
use crate::obs::{ObsHub, ObsState};
use crate::partition::{partition, ShardPlan};
use crate::placement::{PlacementPlane, RouteDecision};
use crate::policy::{policy_from_name, UnknownPolicy};
use crate::router::{Admission, DegradedPolicy, Router};
use crate::shard::{
    HandoffEvent, RecoverPlan, ShardCommand, ShardEvent, ShardHandle, ShardProgress, ShardReply,
    ShardTick, SpawnSpec,
};
use crate::snapshot::{LatencyStats, Snapshot};
use mec_obs::lifecycle::{DRIVER, NO_BS};
use mec_obs::{SloEngine, SloSpec, SlotSample};
use mec_placement::{OpsLog, PlacementConfig, ReconfigOp};
use mec_sim::{EngineState, Metrics, SlotConfig};
use mec_topology::{StationId, Topology};
use mec_workload::Request;
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Supervision and recovery knobs.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Fold deadline in milliseconds: how long the coordinator waits for
    /// a live shard's slot report (the window resets on every progress
    /// event it ingests). A shard that misses it is treated as stalled
    /// and restarted. 0 disables the deadline (a wedged worker then
    /// blocks the watermark forever).
    pub tick_timeout_ms: u64,
    /// Ask workers for an engine checkpoint every N slots (0 disables;
    /// recovery then replays from genesis, which is exact for every
    /// policy but replays the whole prefix).
    pub checkpoint_every: u64,
    /// What happens to arrivals whose home shard is down.
    pub degraded: DegradedPolicy,
    /// Restart attempts per shard before the supervisor gives up and
    /// leaves the shard down until final accounting.
    pub max_restarts: u64,
    /// Slots to wait before restarting a failed shard when the chaos spec
    /// does not pin an explicit recovery slot (minimum 1).
    pub restart_backoff_slots: u64,
    /// Per-shard journal capacity in entries; older entries are evicted
    /// (counted in [`FaultStats::journal_dropped`], making genesis replay
    /// best-effort).
    pub journal_cap: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            tick_timeout_ms: 5_000,
            checkpoint_every: 0,
            degraded: DegradedPolicy::Buffer,
            max_restarts: 8,
            restart_backoff_slots: 1,
            journal_cap: 1 << 20,
        }
    }
}

/// Knobs for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard workers (each owns one engine and one policy).
    pub shards: usize,
    /// Per-shard backlog cap: arrivals beyond it are shed, not queued.
    pub queue_capacity: usize,
    /// Emit a snapshot every this many slots (0 disables periodic
    /// snapshots; the final snapshot is always produced).
    pub snapshot_every: u64,
    /// Scheduling policy name; see [`crate::POLICY_NAMES`].
    pub policy: String,
    /// Which simplex backs the policy's LP solves (see
    /// [`mec_core::SolverKind`]); `DynamicRR` is the only consumer today.
    pub solver: mec_core::SolverKind,
    /// Slot parameters shared by every shard engine. The per-shard seed is
    /// derived from `sim.seed` and the shard index; `sim.horizon` is
    /// ignored (the serving loop owns the clock).
    pub sim: SlotConfig,
    /// Extra slots allowed after the last arrival before the run is cut
    /// off (remaining jobs count as unserved).
    pub drain_slots: u64,
    /// Virtual (as fast as possible) or wall-clock-paced ticking.
    pub clock: ClockMode,
    /// Run-ahead lease length in slots: how far past the fold watermark
    /// a shard may execute before it must wait for the coordinator.
    /// 1 (or 0) is lockstep; larger horizons let shards pipeline across
    /// slots with the coordinator's fold. Leases never cover a slot with
    /// scheduled coordinator work (arrivals, reconfig, faults, pending
    /// handoffs), so the outcome is byte-identical for every horizon —
    /// only wall-clock throughput changes. Ignored under a paced clock.
    pub epoch_horizon: u64,
    /// Supervision, checkpointing, and degraded-routing knobs.
    pub faults: FaultConfig,
    /// Scripted faults to inject (empty for a normal run).
    pub chaos: ChaosSpec,
    /// Observability attachment: a shared metrics registry plus an
    /// optional event-trace sink. `None` (the default) gives the run a
    /// private registry and changes nothing observable.
    pub obs: Option<Arc<ObsHub>>,
    /// Service placement knobs; `services == 0` (the default) disables
    /// placement-aware routing entirely.
    pub placement: PlacementConfig,
    /// Scripted topology reconfiguration ops (joins/leaves/drains),
    /// merged with any ops carried by the chaos spec. Handoffs ship only
    /// the departing station's in-flight jobs as a
    /// [`mec_sim::StationSlice`] and are recorded as replay events, so
    /// they compose with periodic checkpointing
    /// ([`FaultConfig::checkpoint_every`]) — recovery restarts from the
    /// newest checkpoint at or before the op and replays only the
    /// journal suffix.
    pub ops: OpsLog,
    /// Directory for on-disk persistence: per-shard CRC-framed arrival
    /// journals plus atomically-rotated engine checkpoints (see the
    /// [`crate::journal`] module). `None` (the default) keeps all
    /// recovery state in memory. The in-memory supervisor state stays
    /// authoritative either way — disk state is a verified mirror, read
    /// back and checked on every recovery, falling back (and healing)
    /// on any corruption so injected disk faults can change recovery
    /// counters but never the simulation outcome.
    pub state_dir: Option<PathBuf>,
    /// Service-level objectives evaluated after every slot barrier (see
    /// [`mec_obs::SloSpec::parse`]). Empty (the default) disables the
    /// engine entirely; evaluation reads only deterministic per-slot
    /// deltas, so attaching SLOs never perturbs the run.
    pub slo: Vec<SloSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 256,
            snapshot_every: 100,
            policy: "DynamicRR".to_string(),
            solver: mec_core::SolverKind::default(),
            sim: SlotConfig::default(),
            drain_slots: 1_000,
            clock: ClockMode::Virtual,
            epoch_horizon: 8,
            faults: FaultConfig::default(),
            chaos: ChaosSpec::default(),
            obs: None,
            placement: PlacementConfig::default(),
            ops: OpsLog::default(),
            state_dir: None,
            slo: Vec::new(),
        }
    }
}

/// Why a serving run could not complete.
#[derive(Debug)]
pub enum ServeError {
    /// The configured policy name resolves to nothing.
    Policy(UnknownPolicy),
    /// A shard's policy produced an illegal schedule (the wrapped message
    /// names the shard and the simulation error). Fatal by design: a
    /// restart would deterministically replay the same error.
    Shard(String),
    /// A shard worker died and could not be revived even for final
    /// accounting.
    WorkerDied(usize),
    /// The OS refused to spawn a worker thread.
    Spawn {
        /// The shard whose worker could not be spawned.
        shard: usize,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The chaos spec is inconsistent with the run configuration (e.g.
    /// targets a shard index beyond the shard count).
    Chaos(String),
    /// The placement/reconfiguration setup is invalid (an op targets a
    /// station the topology lacks).
    Reconfig(String),
    /// The state directory could not be created (persistence failures
    /// *during* the run degrade to fault counters instead).
    Disk(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Policy(e) => write!(f, "{e}"),
            Self::Shard(msg) => write!(f, "shard failed: {msg}"),
            Self::WorkerDied(shard) => write!(f, "shard {shard} worker died and stayed dead"),
            Self::Spawn { shard, source } => {
                write!(f, "spawning worker for shard {shard}: {source}")
            }
            Self::Chaos(msg) => write!(f, "chaos spec: {msg}"),
            Self::Reconfig(msg) => write!(f, "reconfiguration: {msg}"),
            Self::Disk(e) => write!(f, "state directory: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<UnknownPolicy> for ServeError {
    fn from(e: UnknownPolicy) -> Self {
        Self::Policy(e)
    }
}

/// What a completed serving run hands back.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The deterministic end-of-run snapshot (no wall-clock fields).
    pub final_snapshot: Snapshot,
    /// Merged metrics of every shard engine, in shard order.
    pub metrics: Metrics,
    /// Virtual slots executed.
    pub slots_run: u64,
    /// Periodic snapshots emitted through the callback.
    pub snapshots_emitted: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// The normalized ops journal the run applied, as JSONL (empty when
    /// no ops ran). Feeding it back as the ops script of a same-seed run
    /// reproduces the identical final snapshot — that is the
    /// crash-and-replay oracle for live reconfiguration.
    pub ops_journal: String,
}

/// Derives a shard engine's seed from the run seed. The odd multiplier
/// (splitmix64's increment) decorrelates neighbouring shards.
fn shard_seed(base: u64, shard: usize) -> u64 {
    base ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Supervisor view of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardStatus {
    /// Worker live, participating in the watermark protocol.
    Up,
    /// Worker failed at `detected_at`; restart scheduled at `restart_at`.
    Down {
        /// Slot whose tick the worker missed.
        detected_at: u64,
        /// Slot at whose top the supervisor will attempt a restart.
        restart_at: u64,
    },
    /// Supervisor exhausted `max_restarts`; the shard stays down until
    /// final accounting revives it once more.
    Dead {
        /// Slot whose tick the worker missed last.
        detected_at: u64,
    },
}

/// Per-shard supervision state: everything needed to respawn the worker
/// and to keep reporting cumulative counters while it is down.
struct Supervised {
    shard: usize,
    plan: ShardPlan,
    sim: SlotConfig,
    handle: Option<ShardHandle>,
    status: ShardStatus,
    restarts_used: u64,
    /// Spawn generation of the current worker; progress events stamped
    /// with an older generation are dropped (a restarted shard reuses
    /// the same shared channel).
    gen: u64,
    /// Next slot not yet covered by a lease: the worker holds grants for
    /// every slot below this.
    granted: u64,
    /// Reports received from the current worker but not yet folded —
    /// the run-ahead buffer. Front is always the lowest unfolded slot
    /// (workers report slots in order).
    inbox: VecDeque<ShardTick>,
    /// The spawn wrapper posted a death notice for the current worker.
    died: bool,
    /// The current worker reported a fatal policy error; surfaced at the
    /// fold of the slot whose report it replaced.
    fatal: Option<String>,
    /// Scripted faults for this shard not yet consumed by a failure.
    faults_remaining: Vec<ShardFault>,
    /// Full fault specs for this shard (for `recover_at` lookups).
    chaos_faults: Vec<FaultSpec>,
    /// Recovery base: genesis, or the latest adopted checkpoint.
    base: EngineState,
    /// Handoff operations this shard participated in since the recovery
    /// base, re-applied at their original slots during catch-up replay.
    /// Pruned when a newer checkpoint (which already embeds their
    /// effect) is adopted.
    replay_events: Vec<HandoffEvent>,
    // Last-known cumulative counters — the snapshot view of a shard that
    // is currently down.
    total_reward: f64,
    completed: usize,
    expired: usize,
    aborted: usize,
    /// Every latency sample this shard has reported (replaced wholesale on
    /// recovery; per-tick deltas from before a crash are unreliable).
    latencies: Vec<f64>,
    /// Global ids of the requests inside `base`, in engine-local (dense
    /// inject) order — the supervisor-side mirror of the worker's
    /// lifecycle id map. The engine re-identifies requests on inject, so
    /// a checkpoint alone cannot recover global ids; this mirror is
    /// extended at each adoption (from the journal and handoff events the
    /// checkpoint absorbs) and seeds the tracker of a replacement worker.
    /// Maintained only under the `lifecycle` feature; empty otherwise.
    life_ids: Vec<u64>,
}

/// Extends a supervisor-side lifecycle id mirror with everything a
/// catch-up replay would inject on top of it: handoff absorbs and
/// journaled arrivals merged by slot, absorbs first within a slot —
/// exactly the order `worker_main` re-identifies them (handoffs precede
/// dispatch in the live loop, and replay preserves that).
fn extend_life_ids(map: &mut Vec<u64>, events: &[HandoffEvent], journal: &[(u64, Request)]) {
    let mut events = events.iter().peekable();
    for (slot, request) in journal {
        while let Some(event) = events.next_if(|e| e.slot() <= *slot) {
            if let HandoffEvent::Absorb { ids, .. } = event {
                map.extend_from_slice(ids);
            }
        }
        map.push(request.id().index() as u64);
    }
    for event in events {
        if let HandoffEvent::Absorb { ids, .. } = event {
            map.extend_from_slice(ids);
        }
    }
}

/// The slot at which a failed shard may be restarted: the scripted
/// `recover_at` when the chaos spec pins one for the fault that (by slot)
/// just fired, otherwise detection plus the configured backoff. Always
/// strictly after the detection slot.
fn failure_restart_slot(sup: &Supervised, detected_at: u64, backoff_slots: u64) -> u64 {
    let scripted = sup
        .chaos_faults
        .iter()
        .rfind(|f| f.slot <= detected_at)
        .and_then(|f| f.recover_at);
    match scripted {
        Some(at) => at.max(detected_at + 1),
        None => detected_at + backoff_slots.max(1),
    }
}

/// Transitions a shard to `Down`: abandons the handle (never a blocking
/// join — the worker may be wedged), marks its stations unavailable, and
/// strips faults it already consumed so the restart cannot crash-loop on
/// the same scripted fault. `reason` names the detection signal
/// (`disconnect`, `timeout`, or `send_failed`) for the trace.
fn note_down(
    sup: &mut Supervised,
    router: &mut Router,
    obs: &mut ObsState,
    detected_at: u64,
    backoff_slots: u64,
    reason: &str,
) {
    if !matches!(sup.status, ShardStatus::Up) {
        return;
    }
    obs.note_detection(detected_at, sup.shard, reason);
    if let Some(handle) = sup.handle.take() {
        handle.abandon();
    }
    router.mark_down(sup.shard);
    let restart_at = failure_restart_slot(sup, detected_at, backoff_slots);
    sup.faults_remaining.retain(|f| f.slot > detected_at);
    sup.status = ShardStatus::Down {
        detected_at,
        restart_at,
    };
}

/// Folds one tick reply into the supervisor state: adopt any checkpoint
/// (pruning the journal and replay events it covers, and mirroring it
/// to disk when a state directory is configured), refresh the tracked
/// backlog, cache the cumulative counters, and feed the tick to the
/// metrics layer.
fn apply_tick(
    sup: &mut Supervised,
    router: &mut Router,
    obs: &mut ObsState,
    store: &mut Option<DiskStore>,
    tick: &ShardTick,
) {
    obs.note_tick(tick);
    if let Some(state) = &tick.checkpoint {
        if cfg!(feature = "lifecycle") {
            // Fold the journal suffix and handoff events this checkpoint
            // embeds into the id mirror *before* they are pruned away —
            // the worker's map as of the new base is the old base's map
            // plus these, in replay order.
            let journal: Vec<(u64, Request)> = router
                .journal_since(sup.shard, sup.base.next_slot)
                .into_iter()
                .filter(|(s, _)| *s < state.next_slot)
                .collect();
            let events: Vec<HandoffEvent> = sup
                .replay_events
                .iter()
                .filter(|e| e.slot() < state.next_slot)
                .cloned()
                .collect();
            let mut life_ids = std::mem::take(&mut sup.life_ids);
            extend_life_ids(&mut life_ids, &events, &journal);
            sup.life_ids = life_ids;
        }
        router.prune_journal(sup.shard, state.next_slot);
        sup.replay_events.retain(|e| e.slot() >= state.next_slot);
        sup.base = state.clone();
        if let Some(store) = store.as_mut() {
            let slot = tick.report.slot;
            match store.write_checkpoint(sup.shard, state) {
                Ok(bytes) => obs.note_checkpoint_write(slot, sup.shard, bytes),
                Err(e) => obs.note_disk_write_error(slot, sup.shard, "checkpoint", &e),
            }
            if let Err(e) = store.prune_journal(sup.shard, state.next_slot) {
                obs.note_disk_write_error(slot, sup.shard, "prune", &e);
            }
        }
    }
    router.observe_backlog(sup.shard, tick.backlog);
    sup.total_reward = tick.total_reward;
    sup.completed = tick.completed;
    sup.expired = tick.expired;
    sup.aborted = tick.aborted;
    sup.latencies.extend_from_slice(&tick.new_latencies);
}

/// Reads `shard`'s persisted state back and checks it round-trips to the
/// authoritative in-memory copy (checkpoint byte-equal to the recovery
/// base, journal suffix equal to the router's). Returns the verified
/// disk journal on success, `None` on any corruption, truncation, or
/// divergence — every incident lands in the recovery counters, never in
/// the simulation outcome.
fn verified_disk_journal(
    store: &mut DiskStore,
    sup: &Supervised,
    router: &Router,
    obs: &mut ObsState,
    slot: u64,
) -> Option<Vec<(u64, Request)>> {
    let shard = sup.shard;
    let recovered = store.recover_shard(shard);
    if !recovered.incidents.is_clean() {
        obs.note_disk_incidents(slot, shard, &recovered.incidents);
    }
    let base_ok = match &recovered.checkpoint {
        Some(state) => journal::encode_state(state) == journal::encode_state(&sup.base),
        None => sup.base.next_slot == 0,
    };
    let suffix: Vec<(u64, Request)> = recovered
        .journal
        .into_iter()
        .filter(|(s, _)| *s >= sup.base.next_slot)
        .collect();
    if base_ok && suffix == router.journal_since(shard, sup.base.next_slot) {
        Some(suffix)
    } else {
        obs.note_disk_fallback(slot, shard);
        None
    }
}

/// The replay journal for a restart: the on-disk mirror when it verifies
/// intact, else the authoritative in-memory suffix — in which case the
/// mirror is rewritten (healed) from memory so later recoveries read
/// clean state again. Identical bytes either way; the difference is
/// only visible in the recovery counters.
fn recovery_journal(
    sup: &Supervised,
    router: &Router,
    obs: &mut ObsState,
    store: &mut Option<DiskStore>,
    slot: u64,
) -> Vec<(u64, Request)> {
    let shard = sup.shard;
    let Some(store) = store.as_mut() else {
        return router.journal_since(shard, sup.base.next_slot);
    };
    if let Some(disk) = verified_disk_journal(store, sup, router, obs, slot) {
        return disk;
    }
    let memory = router.journal_since(shard, sup.base.next_slot);
    if let Err(e) = store.rewrite_journal(shard, &memory) {
        obs.note_disk_write_error(slot, shard, "heal", &e);
    }
    if sup.base.next_slot > 0 {
        match store.write_checkpoint(shard, &sup.base) {
            Ok(bytes) => obs.note_checkpoint_write(slot, shard, bytes),
            Err(e) => obs.note_disk_write_error(slot, shard, "heal", &e),
        }
    }
    memory
}

/// Restarts a down shard: spawn a fresh worker with the recovery base,
/// the journal tail, and the handoff events recorded since the base,
/// wait for its catch-up report, and fold the recovered state in.
/// Returns `Ok(false)` if the replacement worker itself died before
/// reporting (the caller reschedules).
///
/// The catch-up wait is a *blocking* receive on purpose: replaying a long
/// prefix legitimately takes many tick intervals, and scripted faults
/// never fire during replay, so the deadline that guards live ticks would
/// only produce false positives here.
#[allow(clippy::too_many_arguments)]
fn restart(
    sup: &mut Supervised,
    router: &mut Router,
    obs: &mut ObsState,
    store: &mut Option<DiskStore>,
    cfg: &ServeConfig,
    progress: &Sender<ShardProgress>,
    horizon_hint: u64,
    slot: u64,
    detected_at: u64,
) -> Result<bool, ServeError> {
    let shard = sup.shard;
    let policy = policy_from_name(&cfg.policy, horizon_hint, cfg.solver)?;
    let journal = recovery_journal(sup, router, obs, store, slot);
    let through = slot.saturating_sub(1);
    let events: Vec<HandoffEvent> = sup
        .replay_events
        .iter()
        .filter(|e| e.slot() >= sup.base.next_slot && e.slot() <= through)
        .cloned()
        .collect();
    // The replacement worker is a fresh incarnation: later progress
    // events from the dead one (none should exist, but a stalled worker
    // is only abandoned, never joined) must not be attributed to it.
    sup.gen += 1;
    sup.inbox.clear();
    sup.died = false;
    sup.fatal = None;
    let spec = SpawnSpec {
        plan: sup.plan.clone(),
        config: sup.sim,
        command_bound: command_bound(cfg),
        checkpoint_every: cfg.faults.checkpoint_every,
        faults: sup.faults_remaining.clone(),
        recover: Some(RecoverPlan {
            base: sup.base.clone(),
            journal,
            events,
            through,
            // The dead worker emitted lifecycle records through the slot
            // before the one whose tick it missed; replay re-emits only
            // from the missed slot on, keeping the stream duplicate-free.
            life_from: detected_at,
            life_ids: sup.life_ids.clone(),
        }),
        progress: progress.clone(),
        gen: sup.gen,
        ring: obs.ring(shard),
        step_hist: obs.step_hist(shard),
        telemetry_every: obs.telemetry_every(),
        life_ring: obs.life_ring(shard),
        stall: Some(obs.stall_probe(shard)),
        fine_hist: Some(obs.latency_fine()),
        probe: obs.probe(),
    };
    obs.note_restart_attempt(shard);
    sup.restarts_used += 1;
    let handle =
        ShardHandle::spawn(spec, policy).map_err(|source| ServeError::Spawn { shard, source })?;
    match handle.recv() {
        Ok(ShardReply::Recovered(rec)) => {
            obs.note_restart_ok(slot, shard, rec.replayed, slot.saturating_sub(detected_at));
            sup.total_reward = rec.total_reward;
            sup.completed = rec.completed;
            sup.expired = rec.expired;
            sup.aborted = rec.aborted;
            sup.latencies = rec.latencies;
            router.observe_backlog(shard, rec.backlog);
            router.mark_up(shard);
            sup.handle = Some(handle);
            sup.status = ShardStatus::Up;
            // Catch-up covered everything below `slot`; leases resume
            // from the watermark.
            sup.granted = slot;
            Ok(true)
        }
        Ok(ShardReply::Error(msg)) => Err(ServeError::Shard(msg)),
        Ok(other) => Err(ServeError::Shard(format!(
            "shard {shard} answered recovery with {other:?}"
        ))),
        Err(_) => {
            obs.note_restart_failed(slot, shard);
            handle.abandon();
            Ok(false)
        }
    }
}

/// Mailbox bound for one worker: a slot's worth of admissions plus the
/// handful of in-flight lease extensions a run-ahead span can leave
/// queued. Sized so the coordinator never blocks sending to a worker
/// that is still executing a lease (and a parked, stalled worker can
/// absorb everything sent before its fold deadline detects it).
fn command_bound(cfg: &ServeConfig) -> usize {
    cfg.queue_capacity + 1 + cfg.epoch_horizon.max(1) as usize
}

/// Folds one progress event into the supervisor state. Events from a
/// stale incarnation (an abandoned worker that limped on after its
/// replacement spawned) are dropped by generation.
fn ingest_progress(supervised: &mut [Supervised], p: ShardProgress) {
    let Some(sup) = supervised.get_mut(p.shard) else {
        return;
    };
    if p.gen != sup.gen {
        return;
    }
    match p.event {
        ShardEvent::Tick(tick) => sup.inbox.push_back(tick),
        ShardEvent::Error(msg) => sup.fatal = Some(msg),
        ShardEvent::Died => sup.died = true,
    }
}

/// A scheduled drain/leave handoff waiting for its source shard to be
/// up. The takeover station is pinned at schedule time so the outcome
/// does not depend on how long the source shard stays down.
struct PendingHandoff {
    station: usize,
    takeover: Option<usize>,
    leave: bool,
}

/// Schedules one drain/leave handoff: membership changes now (the
/// station stops admitting immediately), the state move executes in
/// [`process_handoffs`] once the source shard is up.
fn schedule_handoff(
    station: usize,
    leave: bool,
    plane: &mut PlacementPlane,
    pending: &mut Vec<PendingHandoff>,
) {
    let takeover = plane.nearest_active(station);
    plane.apply_handoff(station, leave, 0);
    pending.push(PendingHandoff {
        station,
        takeover,
        leave,
    });
}

/// Executes every pending handoff whose source shard is up: extract the
/// departing station's in-flight jobs as a [`mec_sim::StationSlice`],
/// record the extract/absorb pair as replay events on the shards
/// involved, and ship the slice live to the takeover shard. Cost is
/// proportional to the moved slice, never to the journal or run length.
///
/// Runs *after* the slot's restart pass, so any shard still Down here
/// has `restart_at > slot` — its eventual catch-up (through ≥ `slot`)
/// replays the events recorded now. A source shard that is Down keeps
/// the handoff pending (the jobs are safe in its replayed engine); a
/// Dead source drops it — those jobs finish in place under final
/// accounting, and nothing moves.
#[allow(clippy::too_many_arguments)]
fn process_handoffs(
    pending: &mut Vec<PendingHandoff>,
    plane: &mut PlacementPlane,
    router: &mut Router,
    supervised: &mut [Supervised],
    obs: &mut ObsState,
    backoff: u64,
    shards: usize,
    slot: u64,
) {
    let mut keep = Vec::new();
    for p in pending.drain(..) {
        let from_shard = router.shard_of(StationId(p.station));
        let local = StationId(p.station / shards);
        match supervised[from_shard].status {
            ShardStatus::Down { .. } => {
                keep.push(p);
                continue;
            }
            ShardStatus::Dead { .. } => {
                obs.note_handoff(slot, p.station, p.takeover, 0, 0, p.leave);
                continue;
            }
            ShardStatus::Up => {}
        }
        let Some(to) = p.takeover else {
            // No other active station: jobs finish where they are.
            obs.note_handoff(slot, p.station, None, 0, 0, p.leave);
            continue;
        };
        let sent = supervised[from_shard]
            .handle
            .as_ref()
            .is_some_and(|h| h.send(ShardCommand::ExtractStation(local)).is_ok());
        if !sent {
            note_down(
                &mut supervised[from_shard],
                router,
                obs,
                slot,
                backoff,
                "send_failed",
            );
            keep.push(p);
            continue;
        }
        let reply = supervised[from_shard]
            .handle
            .as_ref()
            .expect("sent implies a live handle")
            .recv();
        let (slice, ids) = match reply {
            Ok(ShardReply::Extracted(slice, ids)) => (slice, ids),
            // Died mid-extract: the extract event was never recorded, so
            // the replayed engine still owns the jobs; retry next slot.
            _ => {
                note_down(
                    &mut supervised[from_shard],
                    router,
                    obs,
                    slot,
                    backoff,
                    "disconnect",
                );
                keep.push(p);
                continue;
            }
        };
        let moved = slice.jobs.len() as u64;
        if moved == 0 {
            obs.note_handoff(slot, p.station, Some(to), 0, 0, p.leave);
            continue;
        }
        let bytes = journal::encode_slice(&slice).len() as u64;
        supervised[from_shard]
            .replay_events
            .push(HandoffEvent::Extract {
                slot,
                station: local,
            });
        let to_shard = router.shard_of(StationId(to));
        let to_local = StationId(to / shards);
        router.transfer_backlog(from_shard, to_shard, moved as usize);
        for &id in &ids {
            mec_obs::lifecycle!(&*obs, id, "handoff", slot, to_shard as i64, to as i64);
        }
        supervised[to_shard]
            .replay_events
            .push(HandoffEvent::Absorb {
                slot,
                slice: slice.clone(),
                home: to_local,
                ids: ids.clone(),
            });
        if matches!(supervised[to_shard].status, ShardStatus::Up) {
            let ok = supervised[to_shard].handle.as_ref().is_some_and(|h| {
                h.send(ShardCommand::AbsorbStation(slice, to_local, ids))
                    .is_ok()
            });
            if !ok {
                note_down(
                    &mut supervised[to_shard],
                    router,
                    obs,
                    slot,
                    backoff,
                    "send_failed",
                );
            }
        }
        plane.note_migrated(moved, bytes);
        obs.note_handoff(slot, p.station, Some(to), moved, bytes, p.leave);
    }
    *pending = keep;
}

/// Per-slot dispatch counters for the admission-funnel event.
#[derive(Default)]
struct DispatchCounts {
    injected: u64,
    buffered: u64,
    spilled: u64,
    shed: u64,
    held: u64,
}

/// Routes one request through the placement plane and, when it proceeds,
/// through shard admission — the single dispatch path both fresh
/// arrivals and released held requests take. Every admitted request is
/// mirrored to the shard's on-disk journal when a state directory is
/// configured (write failures degrade to counters, never to outcome).
#[allow(clippy::too_many_arguments)]
fn dispatch_one(
    request: Request,
    slot: u64,
    plane: &mut PlacementPlane,
    router: &mut Router,
    supervised: &mut [Supervised],
    obs: &mut ObsState,
    store: &mut Option<DiskStore>,
    backoff: u64,
    counts: &mut DispatchCounts,
) {
    let rid = request.id().index() as u64;
    let request = match plane.route(request, slot) {
        RouteDecision::Proceed(r) => r,
        RouteDecision::Held { .. } => {
            mec_obs::lifecycle!(&*obs, rid, "hold", slot, DRIVER, NO_BS);
            counts.held += 1;
            return;
        }
        RouteDecision::Shed => {
            mec_obs::lifecycle!(&*obs, rid, "shed", slot, DRIVER, NO_BS);
            router.count_shed(1);
            counts.shed += 1;
            return;
        }
    };
    let holders = plane.holders_of(&request);
    if !holders.is_empty() {
        // Placement steered this request away from its home shard toward
        // a replica holder.
        mec_obs::lifecycle!(&*obs, rid, "redirect", slot, DRIVER, NO_BS);
    }
    let decision = router.admit_with(
        &request,
        slot,
        if holders.is_empty() {
            None
        } else {
            Some(&holders)
        },
    );
    match &decision {
        Admission::Inject { shard, .. } => {
            mec_obs::lifecycle!(&*obs, rid, "admit", slot, *shard as i64, NO_BS);
            counts.injected += 1;
        }
        Admission::Spilled { shard, .. } => {
            mec_obs::lifecycle!(&*obs, rid, "spill", slot, *shard as i64, NO_BS);
            counts.spilled += 1;
        }
        Admission::Buffered { shard, .. } => {
            mec_obs::lifecycle!(&*obs, rid, "buffer", slot, *shard as i64, NO_BS);
            counts.buffered += 1;
        }
        Admission::Shed => {
            mec_obs::lifecycle!(&*obs, rid, "shed", slot, DRIVER, NO_BS);
            counts.shed += 1;
        }
    }
    match decision {
        Admission::Inject { shard, request } | Admission::Spilled { shard, request } => {
            if let Some(store) = store.as_mut() {
                if let Err(e) = store.append_arrival(shard, slot, &request) {
                    obs.note_disk_write_error(slot, shard, "append", &e);
                }
            }
            let alive = supervised[shard]
                .handle
                .as_ref()
                .is_some_and(|h| h.send(ShardCommand::Inject(request)).is_ok());
            if !alive {
                // The worker died since its last tick. The request is
                // already journaled, so replay delivers it.
                note_down(
                    &mut supervised[shard],
                    router,
                    obs,
                    slot,
                    backoff,
                    "send_failed",
                );
            }
        }
        Admission::Buffered { shard, request } => {
            if let Some(store) = store.as_mut() {
                if let Err(e) = store.append_arrival(shard, slot, &request) {
                    obs.note_disk_write_error(slot, shard, "append", &e);
                }
            }
        }
        Admission::Shed => {}
    }
}

/// Runs the serving loop to completion over a finite load.
///
/// `on_snapshot` observes each periodic [`Snapshot`] as it is produced
/// (the final snapshot is returned in the outcome, not passed to the
/// callback). The run ends when every arrival has been dispatched and all
/// shard backlogs are empty, or `drain_slots` after the last arrival,
/// whichever comes first.
///
/// # Errors
///
/// * [`ServeError::Policy`] — unknown policy name (checked before any
///   thread spawns);
/// * [`ServeError::Chaos`] — the chaos spec targets a shard that does not
///   exist;
/// * [`ServeError::Shard`] — a policy produced an illegal schedule
///   (fatal: a restart would replay the same error);
/// * [`ServeError::Spawn`] — the OS refused a worker thread;
/// * [`ServeError::WorkerDied`] — a worker died and could not be revived
///   even for final accounting.
///
/// # Panics
///
/// Panics if `cfg.shards` is 0 or exceeds the station count (see
/// [`partition`]).
#[allow(clippy::too_many_lines)]
pub fn serve<F: FnMut(&Snapshot)>(
    topo: &Topology,
    load: LoadGen,
    cfg: &ServeConfig,
    mut on_snapshot: F,
) -> Result<ServeOutcome, ServeError> {
    if let Some(max) = cfg.chaos.max_shard() {
        if max >= cfg.shards {
            return Err(ServeError::Chaos(format!(
                "fault targets shard {max} but the run has only {} shards",
                cfg.shards
            )));
        }
    }
    if !cfg.chaos.disk_faults.is_empty() && cfg.state_dir.is_none() {
        return Err(ServeError::Chaos(
            "disk fault injection needs a state directory (--state-dir)".to_string(),
        ));
    }
    let mut store: Option<DiskStore> = match &cfg.state_dir {
        Some(dir) => Some(DiskStore::create(dir, cfg.shards).map_err(ServeError::Disk)?),
        None => None,
    };
    let mut merged_ops = cfg.ops.clone();
    merged_ops.ops.extend(cfg.chaos.ops.iter().copied());
    let mut plane =
        PlacementPlane::new(topo, &cfg.placement, merged_ops).map_err(ServeError::Reconfig)?;
    let plans = partition(topo, cfg.shards);
    let mut router = Router::new(cfg.shards, cfg.queue_capacity);
    router.set_station_counts(plans.iter().map(|p| p.topo.station_count()).collect());
    router.set_degraded_policy(cfg.faults.degraded);
    router.set_journal_cap(cfg.faults.journal_cap);
    debug_assert!(router.consistent_with(&plans));

    // The policy's horizon hint: everything a finite load can need.
    let last_arrival = load.max_arrival();
    let horizon_hint = last_arrival.saturating_add(cfg.drain_slots);
    let mut obs = ObsState::new(cfg.shards, cfg.obs.clone());
    mec_obs::event!(
        obs,
        0u64,
        "run_start",
        shards = cfg.shards,
        policy = cfg.policy.as_str(),
        seed = cfg.sim.seed,
        requests = load.len(),
    );
    // The shared progress plane: every worker (and every restart
    // incarnation) streams its per-slot reports here. The coordinator
    // keeps its own sender so the channel never disconnects while
    // workers come and go.
    let (progress_tx, progress_rx): (Sender<ShardProgress>, Receiver<ShardProgress>) =
        std::sync::mpsc::channel();
    let mut supervised: Vec<Supervised> = plans
        .into_iter()
        .map(|plan| {
            let shard = plan.shard;
            let policy = policy_from_name(&cfg.policy, horizon_hint, cfg.solver)?;
            let sim = SlotConfig {
                seed: shard_seed(cfg.sim.seed, shard),
                horizon: horizon_hint,
                ..cfg.sim
            };
            let base = EngineState::genesis(plan.topo.station_count());
            let faults_remaining = cfg.chaos.faults_for(shard);
            let chaos_faults: Vec<FaultSpec> = cfg
                .chaos
                .faults
                .iter()
                .filter(|f| f.shard == shard)
                .copied()
                .collect();
            let spec = SpawnSpec {
                plan: plan.clone(),
                config: sim,
                command_bound: command_bound(cfg),
                checkpoint_every: cfg.faults.checkpoint_every,
                faults: faults_remaining.clone(),
                recover: None,
                progress: progress_tx.clone(),
                gen: 0,
                ring: obs.ring(shard),
                step_hist: obs.step_hist(shard),
                telemetry_every: obs.telemetry_every(),
                life_ring: obs.life_ring(shard),
                stall: Some(obs.stall_probe(shard)),
                fine_hist: Some(obs.latency_fine()),
                probe: obs.probe(),
            };
            let handle = ShardHandle::spawn(spec, policy)
                .map_err(|source| ServeError::Spawn { shard, source })?;
            Ok(Supervised {
                shard,
                plan,
                sim,
                handle: Some(handle),
                status: ShardStatus::Up,
                restarts_used: 0,
                gen: 0,
                granted: 0,
                inbox: VecDeque::new(),
                died: false,
                fatal: None,
                faults_remaining,
                chaos_faults,
                base,
                replay_events: Vec::new(),
                total_reward: 0.0,
                completed: 0,
                expired: 0,
                aborted: 0,
                latencies: Vec::new(),
                life_ids: Vec::new(),
            })
        })
        .collect::<Result<_, ServeError>>()?;

    let mut clock = Clock::new(cfg.clock);
    let mut arrivals = load.into_requests().into_iter().peekable();
    let mut snapshots_emitted = 0;
    let mut pending: Vec<PendingHandoff> = Vec::new();
    let backoff = cfg.faults.restart_backoff_slots;
    let mut slo_engine = SloEngine::new(cfg.slo.clone());
    // Driver-side phase split (wall-clock, registry-only): how much of
    // the wall is spent dispatching, recovering shards, and folding at
    // the watermark (granting leases plus waiting for shard reports).
    // The remainder is reconfig/snapshot overhead.
    let mut dispatch_ms = 0.0f64;
    let mut recovery_ms = 0.0f64;
    let mut fold_ms = 0.0f64;
    let horizon = cfg.epoch_horizon.max(1);
    // At least one slot past the last arrival (and past the last
    // scheduled reconfiguration effect), so every request is dispatched
    // (and counted as admitted or shed) even with drain 0.
    let hard_stop = last_arrival
        .max(plane.last_op_effect_slot())
        .saturating_add(cfg.drain_slots.max(1));

    loop {
        let slot = clock.ticks();

        // Scripted disk faults fire at the top of their slot, before any
        // persistence or recovery touches the files.
        if let Some(store) = store.as_mut() {
            for fault in cfg.chaos.disk_faults_due(slot) {
                match store.apply_fault(&fault) {
                    Ok(bytes) => obs.note_disk_fault(slot, &fault, bytes),
                    Err(e) => obs.note_disk_write_error(slot, fault.shard, "fault", &e),
                }
            }
        }

        // Reconfiguration phase: drain handoffs whose window expired, then
        // ops scheduled for this slot. Membership changes immediately; the
        // state move itself executes in the pending pass below, after the
        // supervisor has had its restart chance.
        if plane.is_live() {
            for station in plane.drains_due(slot) {
                schedule_handoff(station, false, &mut plane, &mut pending);
            }
            for op in plane.ops_due(slot) {
                obs.note_reconfig(slot, &op);
                match op {
                    ReconfigOp::BsJoin { station, .. } => plane.apply_join(station),
                    ReconfigOp::BsLeave { station, .. } => {
                        schedule_handoff(station, true, &mut plane, &mut pending);
                    }
                    ReconfigOp::BsDrain {
                        station,
                        slot: at,
                        window,
                    } => plane.apply_drain(station, at.saturating_add(window)),
                }
            }
        }

        // Restart shards whose backoff (or scripted recovery slot) is due.
        // This runs before dispatch, so the journal holds only arrivals
        // from slots before `slot` and catch-up through `slot - 1` leaves
        // the shard exactly at the barrier.
        let recovery_start = std::time::Instant::now();
        for sup in &mut supervised {
            let ShardStatus::Down {
                detected_at,
                restart_at,
            } = sup.status
            else {
                continue;
            };
            if restart_at > slot {
                continue;
            }
            if sup.restarts_used >= cfg.faults.max_restarts {
                sup.status = ShardStatus::Dead { detected_at };
                continue;
            }
            let revived = restart(
                sup,
                &mut router,
                &mut obs,
                &mut store,
                cfg,
                &progress_tx,
                horizon_hint,
                slot,
                detected_at,
            )?;
            if !revived {
                sup.status = ShardStatus::Down {
                    detected_at,
                    restart_at: slot + backoff.max(1),
                };
            }
        }
        recovery_ms += recovery_start.elapsed().as_secs_f64() * 1e3;

        // Pending drain/leave handoffs execute once their source shard is
        // up — after the restart pass, so a shard that stays down keeps
        // `restart_at > slot` and its catch-up replays the events
        // recorded here.
        if !pending.is_empty() {
            process_handoffs(
                &mut pending,
                &mut plane,
                &mut router,
                &mut supervised,
                &mut obs,
                backoff,
                cfg.shards,
                slot,
            );
        }

        // Installs that finished their latency window become resident
        // before this slot's dispatch, so their held requests hit.
        for done in plane.complete_installs(slot) {
            obs.note_install_done(slot, &done);
        }

        // Dispatch requests released from install holds, then every
        // arrival due by this slot — all through the placement plane and
        // admission, counting each outcome for the admission-funnel event.
        let shed_down_before = router.shed_while_down();
        let place_before = plane.stats().clone();
        let mut counts = DispatchCounts::default();
        let dispatch_start = std::time::Instant::now();
        {
            mec_obs::prof_slot!(slot);
            mec_obs::prof_scope!("serve.dispatch");
            for request in plane.release_due(slot) {
                mec_obs::lifecycle!(
                    obs,
                    request.id().index() as u64,
                    "release",
                    slot,
                    DRIVER,
                    NO_BS
                );
                dispatch_one(
                    request,
                    slot,
                    &mut plane,
                    &mut router,
                    &mut supervised,
                    &mut obs,
                    &mut store,
                    backoff,
                    &mut counts,
                );
            }
            while arrivals.peek().is_some_and(|r| r.arrival_slot() <= slot) {
                let Some(request) = arrivals.next() else {
                    break;
                };
                dispatch_one(
                    request,
                    slot,
                    &mut plane,
                    &mut router,
                    &mut supervised,
                    &mut obs,
                    &mut store,
                    backoff,
                    &mut counts,
                );
            }
        }
        // Per-slot durability point: everything this slot admitted is on
        // disk before the slot's lease can execute.
        if let Some(store) = store.as_mut() {
            if let Err(e) = store.flush() {
                obs.note_disk_write_error(slot, usize::MAX, "flush", &e);
            }
        }
        dispatch_ms += dispatch_start.elapsed().as_secs_f64() * 1e3;
        let shed_down = router.shed_while_down() - shed_down_before;
        obs.note_admission(
            slot,
            counts.injected,
            counts.buffered,
            counts.spilled,
            counts.shed.saturating_sub(shed_down),
            shed_down,
            counts.held,
        );
        let place_delta = plane.stats().delta_since(&place_before);
        obs.note_placement(slot, &place_delta);

        // Watermark phase: extend each live shard's lease (possibly many
        // slots ahead), then fold exactly this slot's tick reports in
        // shard order.
        let slo_active = !slo_engine.is_empty();
        let (good_before, bad_before, lat_lens) = if slo_active {
            (
                supervised.iter().map(|s| s.completed).sum::<usize>(),
                supervised
                    .iter()
                    .map(|s| s.expired + s.aborted)
                    .sum::<usize>(),
                supervised
                    .iter()
                    .map(|s| s.latencies.len())
                    .collect::<Vec<_>>(),
            )
        } else {
            (0, 0, Vec::new())
        };
        clock.tick();
        let fold_start = std::time::Instant::now();
        {
            mec_obs::prof_scope!("serve.barrier");
            // Grant pass. A shard may run ahead of the coordinator only
            // while the coordinator can prove it will send that shard
            // nothing for the leased slots: no pending arrivals or held
            // releases inside the lease, no reconfig ops or handoffs
            // outstanding, every peer up (so no extract/absorb or restart
            // traffic), and no scripted fault inside the span (the fault
            // must fire at its exact slot, after that slot's injections).
            let run_ahead_ok = horizon > 1
                && cfg.clock == ClockMode::Virtual
                && pending.is_empty()
                && supervised.iter().all(|s| s.status == ShardStatus::Up)
                && plane.ops_exhausted()
                && !plane.has_held()
                && !plane.has_pending_drains();
            let global_through = if run_ahead_ok {
                let mut through = slot + horizon - 1;
                if let Some(next) = arrivals.peek() {
                    through = through.min(next.arrival_slot().saturating_sub(1));
                }
                through.min(hard_stop.saturating_sub(1)).max(slot)
            } else {
                slot
            };
            for sup in &mut supervised {
                if sup.status != ShardStatus::Up {
                    continue;
                }
                let mut through = global_through;
                for fault in &sup.faults_remaining {
                    if fault.slot > slot {
                        through = through.min(fault.slot - 1);
                    }
                }
                if sup.granted > through {
                    continue; // current lease already covers this slot
                }
                let alive = sup
                    .handle
                    .as_ref()
                    .is_some_and(|h| h.send(ShardCommand::Grant { through }).is_ok());
                if alive {
                    sup.granted = through + 1;
                } else {
                    note_down(sup, &mut router, &mut obs, slot, backoff, "send_failed");
                }
            }
            // Fold wait: pull progress events until every live shard has
            // buffered this slot's tick (or signalled death/error). The
            // deadline window restarts on every event, so a long grant
            // span never trips it while progress is still flowing.
            let deadline = cfg.faults.tick_timeout_ms;
            loop {
                let waiting = supervised.iter().any(|sup| {
                    sup.status == ShardStatus::Up
                        && sup.inbox.is_empty()
                        && !sup.died
                        && sup.fatal.is_none()
                });
                if !waiting {
                    break;
                }
                let event = if deadline > 0 {
                    match progress_rx.recv_timeout(Duration::from_millis(deadline)) {
                        Ok(p) => Some(p),
                        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                            None
                        }
                    }
                } else {
                    // Deadline 0 disables stall detection; the driver
                    // holds a sender clone, so this never disconnects.
                    progress_rx.recv().ok()
                };
                match event {
                    Some(p) => ingest_progress(&mut supervised, p),
                    // Deadline elapsed: every still-missing shard is
                    // stalled; the fold pass below marks them down.
                    None => break,
                }
            }
            // Fold pass in shard order — the ordering half of the
            // determinism contract. A missing tick carries its detection
            // signal: a death notice is a crash, a bare deadline a stall.
            for sup in &mut supervised {
                if sup.status != ShardStatus::Up {
                    continue;
                }
                if let Some(tick) = sup.inbox.pop_front() {
                    debug_assert_eq!(tick.report.slot, slot, "shard folded out of order");
                    apply_tick(sup, &mut router, &mut obs, &mut store, &tick);
                } else if let Some(msg) = sup.fatal.take() {
                    return Err(ServeError::Shard(msg));
                } else {
                    let reason = if sup.died { "disconnect" } else { "timeout" };
                    note_down(sup, &mut router, &mut obs, slot, backoff, reason);
                }
            }
            for sup in &supervised {
                if sup.status != ShardStatus::Up {
                    obs.note_degraded(sup.shard);
                }
            }
        }
        fold_ms += fold_start.elapsed().as_secs_f64() * 1e3;

        let slots_done = clock.ticks();
        obs.set_slot(slots_done);
        obs.note_driver_stall(
            clock.elapsed_secs() * 1e3,
            dispatch_ms,
            recovery_ms,
            fold_ms,
        );

        // SLO evaluation over this slot's deterministic deltas: completions
        // (with their latencies) are good events; expirations, aborts, and
        // sheds are bad. Runs before the ring drain so breach/recovery
        // events land in the trace at the slot that caused them.
        if slo_active {
            let good = supervised
                .iter()
                .map(|s| s.completed)
                .sum::<usize>()
                .saturating_sub(good_before);
            let lost = supervised
                .iter()
                .map(|s| s.expired + s.aborted)
                .sum::<usize>()
                .saturating_sub(bad_before);
            let latencies: Vec<f64> = supervised
                .iter()
                .zip(&lat_lens)
                .flat_map(|(s, &seen)| s.latencies[seen.min(s.latencies.len())..].iter().copied())
                .collect();
            let transitions = slo_engine.observe_slot(SlotSample {
                good: good as u64,
                bad: (lost as u64) + counts.shed,
                latencies_ms: &latencies,
            });
            obs.note_slo(slot, &slo_engine, &transitions);
        }
        // Worker-side events join the trace here, at the watermark, in
        // shard order. Events a run-ahead worker already emitted for
        // future slots stay held back until their slot folds, so the
        // trace is byte-identical for every epoch horizon.
        obs.drain_rings_through(slot);
        if cfg.snapshot_every > 0 && slots_done.is_multiple_of(cfg.snapshot_every) {
            mec_obs::prof_scope!("serve.snapshot");
            obs.sync_router(&router);
            obs.sync_placement(plane.state());
            let samples: Vec<f64> = supervised
                .iter()
                .flat_map(|s| s.latencies.iter().copied())
                .collect();
            let snap = Snapshot {
                slot: slots_done,
                shards: cfg.shards,
                admitted: router.admitted(),
                shed: router.shed(),
                completed: supervised.iter().map(|s| s.completed).sum(),
                expired: supervised.iter().map(|s| s.expired).sum(),
                aborted: supervised.iter().map(|s| s.aborted).sum(),
                unserved: 0,
                total_reward: supervised.iter().map(|s| s.total_reward).sum(),
                latency: LatencyStats::from_samples(&samples),
                queue_depths: router.backlogs().to_vec(),
                faults: obs.fault_stats(),
                placement: plane.stats().clone(),
                slots_per_sec: Some(slots_done as f64 / clock.elapsed_secs().max(1e-9)),
            };
            on_snapshot(&snap);
            snapshots_emitted += 1;
        }

        let drained = arrivals.peek().is_none()
            && router.backlogs().iter().all(|&b| b == 0)
            && !plane.has_held()
            && plane.ops_exhausted()
            && !plane.has_pending_drains()
            && pending.is_empty();
        if drained || slots_done >= hard_stop {
            break;
        }
    }

    // The hard stop can cut the run off with requests still parked behind
    // in-flight installs; they count as shed so admitted + shed covers
    // every arrival.
    let abandoned = plane.abandon_held();
    if abandoned > 0 {
        router.count_shed(abandoned);
    }

    // Terminal accounting, merged in shard order. Down (or given-up)
    // shards are revived with a catch-up through the final slot so every
    // admitted request appears in exactly one shard's metrics; a worker
    // that dies on Finish gets one more revival. Failures here do not
    // leave poisoned channels behind: every handle's Drop abandons-then-
    // joins, so teardown completes even when one shard already exited.
    let end_slot = clock.ticks();
    let mut metrics = Metrics::new();
    for sup in &mut supervised {
        let shard = sup.shard;
        let mut revivals = 0u32;
        loop {
            if sup.status != ShardStatus::Up {
                let detected_at = match sup.status {
                    ShardStatus::Down { detected_at, .. } | ShardStatus::Dead { detected_at } => {
                        detected_at
                    }
                    ShardStatus::Up => end_slot,
                };
                revivals += 1;
                if revivals > 2 {
                    return Err(ServeError::WorkerDied(shard));
                }
                let revived = restart(
                    sup,
                    &mut router,
                    &mut obs,
                    &mut store,
                    cfg,
                    &progress_tx,
                    horizon_hint,
                    end_slot,
                    detected_at,
                )?;
                if !revived {
                    continue;
                }
            }
            let Some(handle) = sup.handle.take() else {
                return Err(ServeError::WorkerDied(shard));
            };
            if handle.send(ShardCommand::Finish).is_err() {
                handle.abandon();
                router.mark_down(shard);
                sup.status = ShardStatus::Down {
                    detected_at: end_slot,
                    restart_at: end_slot,
                };
                continue;
            }
            let reply = if deadline_for(cfg) > 0 {
                handle
                    .recv_timeout(Duration::from_millis(deadline_for(cfg)))
                    .ok()
            } else {
                handle.recv().ok()
            };
            match reply {
                Some(ShardReply::Final(fin)) => {
                    metrics.merge(&fin.metrics);
                    handle.join();
                    break;
                }
                Some(ShardReply::Error(msg)) => return Err(ServeError::Shard(msg)),
                Some(other) => {
                    return Err(ServeError::Shard(format!(
                        "shard {shard} answered Finish with {other:?}"
                    )))
                }
                None => {
                    handle.abandon();
                    router.mark_down(shard);
                    sup.status = ShardStatus::Down {
                        detected_at: end_slot,
                        restart_at: end_slot,
                    };
                }
            }
        }
    }
    let wall_secs = clock.elapsed_secs();

    // Final disk audit: read every shard's persisted state back and check
    // it round-trips to the in-memory truth, so corruption injected after
    // the last restart still surfaces in the recovery counters.
    if let Some(store) = store.as_mut() {
        for sup in &supervised {
            let _ = verified_disk_journal(store, sup, &router, &mut obs, end_slot);
        }
    }
    drop(supervised);

    obs.sync_router(&router);
    obs.sync_placement(plane.state());
    obs.drain_rings_through(u64::MAX);
    let final_snapshot = Snapshot {
        slot: end_slot,
        shards: cfg.shards,
        admitted: router.admitted(),
        shed: router.shed(),
        completed: metrics.completed(),
        expired: metrics.expired(),
        aborted: metrics.aborted(),
        unserved: metrics.unserved(),
        total_reward: metrics.total_reward(),
        latency: LatencyStats::from_samples(metrics.latencies_ms()),
        queue_depths: router.backlogs().to_vec(),
        faults: obs.fault_stats(),
        placement: plane.stats().clone(),
        slots_per_sec: None,
    };
    mec_obs::event!(
        obs,
        end_slot,
        "run_end",
        admitted = final_snapshot.admitted,
        shed = final_snapshot.shed,
        completed = final_snapshot.completed,
        expired = final_snapshot.expired,
        aborted = final_snapshot.aborted,
        unserved = final_snapshot.unserved,
        total_reward = final_snapshot.total_reward,
    );
    // Wall-clock stall summary events are opt-in (`--stall-events`):
    // their payloads vary run to run, which would break trace
    // byte-identity for same-seed comparisons.
    if obs.stall_events() {
        obs.note_stall_summary(
            end_slot,
            wall_secs * 1e3,
            dispatch_ms,
            recovery_ms,
            fold_ms,
            end_slot,
        );
    }
    obs.note_driver_stall(wall_secs * 1e3, dispatch_ms, recovery_ms, fold_ms);
    obs.flush(end_slot);
    Ok(ServeOutcome {
        final_snapshot,
        metrics,
        slots_run: end_slot,
        snapshots_emitted,
        wall_secs,
        ops_journal: if plane.is_live() {
            plane.ops_journal()
        } else {
            String::new()
        },
    })
}

/// The per-slot reply deadline in milliseconds (0 = none).
const fn deadline_for(cfg: &ServeConfig) -> u64 {
    cfg.faults.tick_timeout_ms
}
