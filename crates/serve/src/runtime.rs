//! The serving loop: partition → spawn → route/admit → lock-step ticks →
//! periodic snapshots → drain → final accounting.
//!
//! ## Determinism contract
//!
//! With [`ClockMode::Virtual`] and fixed seed, shard count, policy, and
//! load, two runs produce byte-identical final snapshots because every
//! source of ordering is pinned:
//!
//! * admission decisions read only the [`Router`]'s tracked backlog (the
//!   depth each shard reported at the last barriered tick plus injections
//!   since), never live channel state;
//! * every slot is a barrier — all shards tick, then all replies are
//!   collected **in shard order** before anything else happens;
//! * per-shard engine seeds derive from the base seed and shard index;
//! * the final [`Snapshot`] carries no wall-clock field.

use crate::clock::{Clock, ClockMode};
use crate::loadgen::LoadGen;
use crate::partition::partition;
use crate::policy::{policy_from_name, UnknownPolicy};
use crate::router::Router;
use crate::shard::{ShardCommand, ShardHandle, ShardReply, ShardTick};
use crate::snapshot::{LatencyStats, Snapshot};
use mec_sim::{Metrics, SlotConfig};
use mec_topology::Topology;
use std::fmt;

/// Knobs for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard workers (each owns one engine and one policy).
    pub shards: usize,
    /// Per-shard backlog cap: arrivals beyond it are shed, not queued.
    pub queue_capacity: usize,
    /// Emit a snapshot every this many slots (0 disables periodic
    /// snapshots; the final snapshot is always produced).
    pub snapshot_every: u64,
    /// Scheduling policy name; see [`crate::POLICY_NAMES`].
    pub policy: String,
    /// Slot parameters shared by every shard engine. The per-shard seed is
    /// derived from `sim.seed` and the shard index; `sim.horizon` is
    /// ignored (the serving loop owns the clock).
    pub sim: SlotConfig,
    /// Extra slots allowed after the last arrival before the run is cut
    /// off (remaining jobs count as unserved).
    pub drain_slots: u64,
    /// Virtual (as fast as possible) or wall-clock-paced ticking.
    pub clock: ClockMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 256,
            snapshot_every: 100,
            policy: "DynamicRR".to_string(),
            sim: SlotConfig::default(),
            drain_slots: 1_000,
            clock: ClockMode::Virtual,
        }
    }
}

/// Why a serving run could not complete.
#[derive(Debug)]
pub enum ServeError {
    /// The configured policy name resolves to nothing.
    Policy(UnknownPolicy),
    /// A shard's policy produced an illegal schedule (the wrapped message
    /// names the shard and the simulation error).
    Shard(String),
    /// A shard worker exited without replying — its thread panicked or
    /// was torn down early.
    WorkerDied(usize),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Policy(e) => write!(f, "{e}"),
            Self::Shard(msg) => write!(f, "shard failed: {msg}"),
            Self::WorkerDied(shard) => write!(f, "shard {shard} worker died"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<UnknownPolicy> for ServeError {
    fn from(e: UnknownPolicy) -> Self {
        Self::Policy(e)
    }
}

/// What a completed serving run hands back.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The deterministic end-of-run snapshot (no wall-clock fields).
    pub final_snapshot: Snapshot,
    /// Merged metrics of every shard engine, in shard order.
    pub metrics: Metrics,
    /// Virtual slots executed.
    pub slots_run: u64,
    /// Periodic snapshots emitted through the callback.
    pub snapshots_emitted: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
}

/// Derives a shard engine's seed from the run seed. The odd multiplier
/// (splitmix64's increment) decorrelates neighbouring shards.
fn shard_seed(base: u64, shard: usize) -> u64 {
    base ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs the serving loop to completion over a finite load.
///
/// `on_snapshot` observes each periodic [`Snapshot`] as it is produced
/// (the final snapshot is returned in the outcome, not passed to the
/// callback). The run ends when every arrival has been dispatched and all
/// shard backlogs are empty, or `drain_slots` after the last arrival,
/// whichever comes first.
///
/// # Errors
///
/// * [`ServeError::Policy`] — unknown policy name (checked before any
///   thread spawns);
/// * [`ServeError::Shard`] — a policy produced an illegal schedule;
/// * [`ServeError::WorkerDied`] — a worker thread vanished mid-protocol.
///
/// # Panics
///
/// Panics if `cfg.shards` is 0 or exceeds the station count (see
/// [`partition`]).
pub fn serve<F: FnMut(&Snapshot)>(
    topo: &Topology,
    load: LoadGen,
    cfg: &ServeConfig,
    mut on_snapshot: F,
) -> Result<ServeOutcome, ServeError> {
    let plans = partition(topo, cfg.shards);
    let mut router = Router::new(cfg.shards, cfg.queue_capacity);
    debug_assert!(router.consistent_with(&plans));

    // The policy's horizon hint: everything a finite load can need.
    let last_arrival = load.max_arrival();
    let horizon_hint = last_arrival.saturating_add(cfg.drain_slots);
    let handles: Vec<ShardHandle> = plans
        .into_iter()
        .map(|plan| {
            let shard = plan.shard;
            let policy = policy_from_name(&cfg.policy, horizon_hint)?;
            let sim = SlotConfig {
                seed: shard_seed(cfg.sim.seed, shard),
                horizon: horizon_hint,
                ..cfg.sim
            };
            // Bound = worst-case commands between barriers: one slot's
            // admissions (≤ queue capacity) plus the tick itself.
            Ok(ShardHandle::spawn(
                plan,
                sim,
                policy,
                cfg.queue_capacity + 1,
            ))
        })
        .collect::<Result<_, UnknownPolicy>>()?;

    let mut clock = Clock::new(cfg.clock);
    let mut arrivals = load.into_requests().into_iter().peekable();
    let mut latencies: Vec<f64> = Vec::new();
    let mut snapshots_emitted = 0;
    // At least one slot past the last arrival, so every request is
    // dispatched (and counted as admitted or shed) even with drain 0.
    let hard_stop = last_arrival.saturating_add(cfg.drain_slots.max(1));

    loop {
        let slot = clock.ticks();
        // Dispatch every arrival due by this slot through admission.
        while arrivals.peek().is_some_and(|r| r.arrival_slot() <= slot) {
            let request = arrivals.next().expect("peeked");
            if let Some((shard, localized)) = router.admit(&request) {
                handles[shard]
                    .send(ShardCommand::Inject(localized))
                    .map_err(|_| ServeError::WorkerDied(shard))?;
            }
        }
        // Barriered tick: all shards advance one slot, replies collected
        // in shard order.
        clock.tick();
        for handle in &handles {
            handle
                .send(ShardCommand::Tick)
                .map_err(|_| ServeError::WorkerDied(handle.shard))?;
        }
        let mut ticks: Vec<ShardTick> = Vec::with_capacity(handles.len());
        for handle in &handles {
            match handle.recv() {
                Ok(ShardReply::Tick(tick)) => ticks.push(tick),
                Ok(ShardReply::Error(msg)) => return Err(ServeError::Shard(msg)),
                Ok(ShardReply::Final(_)) => {
                    return Err(ServeError::Shard(format!(
                        "shard {} sent a final report before Finish",
                        handle.shard
                    )))
                }
                Err(_) => return Err(ServeError::WorkerDied(handle.shard)),
            }
        }
        for tick in &ticks {
            router.observe_backlog(tick.shard, tick.backlog);
            latencies.extend_from_slice(&tick.new_latencies);
        }

        let slots_done = clock.ticks();
        if cfg.snapshot_every > 0 && slots_done.is_multiple_of(cfg.snapshot_every) {
            let snap = Snapshot {
                slot: slots_done,
                shards: cfg.shards,
                admitted: router.admitted(),
                shed: router.shed(),
                completed: ticks.iter().map(|t| t.completed).sum(),
                expired: ticks.iter().map(|t| t.expired).sum(),
                aborted: ticks.iter().map(|t| t.aborted).sum(),
                unserved: 0,
                total_reward: ticks.iter().map(|t| t.total_reward).sum(),
                latency: LatencyStats::from_samples(&latencies),
                queue_depths: router.backlogs().to_vec(),
                slots_per_sec: Some(slots_done as f64 / clock.elapsed_secs().max(1e-9)),
            };
            on_snapshot(&snap);
            snapshots_emitted += 1;
        }

        let drained = arrivals.peek().is_none() && router.backlogs().iter().all(|&b| b == 0);
        if drained || slots_done >= hard_stop {
            break;
        }
    }

    // Terminal accounting, merged in shard order.
    for handle in &handles {
        handle
            .send(ShardCommand::Finish)
            .map_err(|_| ServeError::WorkerDied(handle.shard))?;
    }
    let mut metrics = Metrics::new();
    for handle in &handles {
        match handle.recv() {
            Ok(ShardReply::Final(fin)) => metrics.merge(&fin.metrics),
            Ok(other) => {
                return Err(ServeError::Shard(format!(
                    "shard {} answered Finish with {other:?}",
                    handle.shard
                )))
            }
            Err(_) => return Err(ServeError::WorkerDied(handle.shard)),
        }
    }
    let wall_secs = clock.elapsed_secs();
    for handle in handles {
        handle.join();
    }

    let final_snapshot = Snapshot {
        slot: clock.ticks(),
        shards: cfg.shards,
        admitted: router.admitted(),
        shed: router.shed(),
        completed: metrics.completed(),
        expired: metrics.expired(),
        aborted: metrics.aborted(),
        unserved: metrics.unserved(),
        total_reward: metrics.total_reward(),
        latency: LatencyStats::from_samples(metrics.latencies_ms()),
        queue_depths: router.backlogs().to_vec(),
        slots_per_sec: None,
    };
    Ok(ServeOutcome {
        final_snapshot,
        metrics,
        slots_run: clock.ticks(),
        snapshots_emitted,
        wall_secs,
    })
}
