//! Long-running sharded serving binary.
//!
//! Generates (or loads) an AR request population, re-times it as an
//! open-loop Poisson stream, and drives it through the sharded runtime,
//! printing one JSON snapshot per line to stdout and a human summary to
//! stderr.
//!
//! ```text
//! mec-serve --stations 100 --requests 100000 --shards 4 --rps 2000
//! mec-serve --chaos crash:shard=1@slot=50,recover@slot=60 --seed 7
//! ```

use mec_placement::{EvictionPolicy, OpsLog, PlacementConfig};
use mec_serve::{serve, ChaosSpec, ClockMode, DegradedPolicy, LoadGen, ServeConfig, POLICY_NAMES};
use mec_topology::TopologyBuilder;
use mec_workload::WorkloadBuilder;
use std::process::ExitCode;

struct Args {
    stations: usize,
    requests: usize,
    shards: usize,
    policy: String,
    solver: mec_core::SolverKind,
    rps: f64,
    seed: u64,
    snapshot_every: u64,
    queue_capacity: usize,
    epoch_horizon: u64,
    slot_ms: f64,
    drain_slots: u64,
    paced: bool,
    trace: Option<String>,
    chaos: ChaosSpec,
    tick_timeout_ms: u64,
    checkpoint_every: u64,
    degraded: DegradedPolicy,
    max_restarts: u64,
    metrics_addr: Option<String>,
    trace_out: Option<String>,
    telemetry_every: Option<u64>,
    hold_metrics_ms: u64,
    profile_out: Option<String>,
    profile_folded: Option<String>,
    services: usize,
    cache_capacity: u32,
    eviction: EvictionPolicy,
    ops: OpsLog,
    ops_journal_out: Option<String>,
    state_dir: Option<String>,
    slo: Vec<mec_obs::SloSpec>,
    lifecycle_out: Option<String>,
    stall_events: bool,
    learner_events: bool,
    flight_out: Option<String>,
    flight_dump_on: Option<mec_obs::FlightTriggerSet>,
}

impl Default for Args {
    fn default() -> Self {
        let faults = mec_serve::FaultConfig::default();
        let placement = PlacementConfig::default();
        Self {
            stations: 100,
            requests: 100_000,
            shards: 4,
            policy: "DynamicRR".to_string(),
            solver: mec_core::SolverKind::default(),
            rps: 2_000.0,
            seed: 0,
            snapshot_every: 100,
            queue_capacity: 256,
            epoch_horizon: mec_serve::ServeConfig::default().epoch_horizon,
            slot_ms: 50.0,
            drain_slots: 1_000,
            paced: false,
            trace: None,
            chaos: ChaosSpec::default(),
            tick_timeout_ms: faults.tick_timeout_ms,
            checkpoint_every: faults.checkpoint_every,
            degraded: faults.degraded,
            max_restarts: faults.max_restarts,
            metrics_addr: None,
            trace_out: None,
            telemetry_every: None,
            hold_metrics_ms: 0,
            profile_out: None,
            profile_folded: None,
            services: placement.services,
            cache_capacity: placement.cache_capacity,
            eviction: placement.eviction,
            ops: OpsLog::default(),
            ops_journal_out: None,
            state_dir: None,
            slo: Vec::new(),
            lifecycle_out: None,
            stall_events: false,
            learner_events: false,
            flight_out: None,
            flight_dump_on: None,
        }
    }
}

const USAGE: &str = "\
mec-serve: sharded long-running AR offload serving runtime

USAGE:
    mec-serve [OPTIONS]

OPTIONS:
    --stations <N>        base stations in the topology [default: 100]
    --requests <N>        requests to generate [default: 100000]
    --shards <N>          shard worker threads [default: 4]
    --policy <NAME>       scheduling policy [default: DynamicRR]
    --solver <KIND>       simplex backing the policy's LP solves:
                          dense | revised [default: revised]
    --rps <F>             offered load, requests per second [default: 2000]
    --seed <N>            run seed (topology, workload, demand) [default: 0]
    --snapshot-every <N>  slots between JSON snapshots; 0 = none [default: 100]
    --queue-capacity <N>  per-shard backlog cap before shedding [default: 256]
    --epoch-horizon <N>   run-ahead lease span in slots; 1 = lockstep
                          (same results for every value) [default: 8]
    --slot-ms <F>         slot length in milliseconds [default: 50]
    --drain-slots <N>     slots allowed after the last arrival [default: 1000]
    --paced               pace ticks to wall time instead of virtual time
    --trace <PATH>        replay a mec-workload CSV trace instead of generating
    --chaos <SPEC>        inject scripted faults and reconfigurations, e.g.
                          crash:shard=1@slot=50,recover@slot=60
                          (fault kinds: crash, stall, slow:...@ms=M;
                          reconfig kinds: join/leave:station=K@slot=N,
                          drain:station=K@slot=N[@window=W];
                          disk faults, need --state-dir:
                          truncate/corrupt:shard=K@slot=N@target=
                          journal|ckpt[@bytes=B], slowdisk:...@ms=M)
    --chaos-script <PATH> same grammar from a file; one or more directives
                          per line, '#' comments

PLACEMENT AND RECONFIGURATION:
    --services <N>        size of the service catalog; 0 disables
                          placement-aware routing [default: 0]
    --cache-capacity <N>  per-station cache capacity in footprint units
                          [default: 8]
    --eviction <POLICY>   cache eviction policy: lru | lfu [default: lru]
    --ops-script <PATH>   replay a topology reconfiguration journal (JSONL
                          of join/leave/drain ops; '#' comments), merged
                          with any --chaos reconfig directives
    --ops-journal-out <PATH>
                          write the normalized ops journal the run applied
                          (replayable via --ops-script)
    --tick-timeout-ms <N> per-slot reply deadline before a shard counts as
                          stalled; 0 = wait forever [default: 5000]
    --checkpoint-every <N> checkpoint shard engines every N slots; 0 =
                          recover by replaying from genesis; composes
                          with --ops-script [default: 0]
    --state-dir <DIR>     mirror arrival journals and checkpoints to DIR
                          as CRC-framed files (verified on recovery;
                          required by disk-fault chaos specs)
    --degraded <POLICY>   routing while a shard is down: buffer | shed |
                          spill [default: buffer]
    --max-restarts <N>    restart attempts per shard before giving up
                          [default: 8]

OBSERVABILITY (requires a build with --features obs):
    --metrics-addr <ADDR> serve GET /metrics (Prometheus text) and
                          /metrics.json on this address, e.g. 127.0.0.1:9100
                          (port 0 picks a free port, printed to stderr)
    --trace-out <PATH>    append one JSON line per structured event to PATH
                          (feed it to mec-obs-report)
    --telemetry-every <N> poll shard learners for per-arm telemetry every
                          N slots; 0 = off [default: 25]
    --hold-metrics-ms <N> keep the metrics endpoint up N ms after the run
                          finishes, for a final scrape [default: 0]
    --slo <SPEC>          evaluate a service-level objective every slot and
                          emit slo_breach / slo_recovered trace events plus
                          burn-rate gauges and GET /slo.json; repeatable.
                          Grammar: deadline_hit_rate>=0.95@512 or
                          p99_latency<=250@512 (p50/p95/p99/p999; @N is the
                          sliding window in slots)
    --stall-events        emit run-end stall_shard / stall_driver trace
                          events (wall-clock payloads; off by default so
                          same-seed traces stay byte-identical)
    --learner-events      attach the learner probe: per-arm lifecycle
                          trace events, live regret gauges, drift
                          detection, and GET /learning.json + /flight.json
                          (emits for learning policies, i.e. DynamicRR)
    --flight-out <PATH>   append flight-recorder dumps (decision-snapshot
                          JSONL; feed to mec-obs-report) to PATH when a
                          trigger fires; implies --learner-events
    --flight-dump-on <LIST>
                          which events trip a flight dump, as a comma
                          list of slo, drift, crash [default: all three]

LIFECYCLE (requires a build with --features lifecycle):
    --lifecycle-out <PATH>
                          append one JSON line per request-lifecycle stage
                          (admit, start, complete, handoff, ...) to PATH

PROFILING (requires a build with --features prof):
    --profile-out <PATH>  write the hierarchical phase profile as JSON
                          lines to PATH (feed it to mec-obs-report)
    --profile-folded <PATH>
                          write collapsed stacks (one `a;b;c N` line per
                          stack) to PATH for flamegraph tooling
    --help                print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--stations" => args.stations = parse(&value("--stations")?)?,
            "--requests" => args.requests = parse(&value("--requests")?)?,
            "--shards" => args.shards = parse(&value("--shards")?)?,
            "--policy" => args.policy = value("--policy")?,
            "--solver" => args.solver = parse(&value("--solver")?)?,
            "--rps" => args.rps = parse(&value("--rps")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--snapshot-every" => args.snapshot_every = parse(&value("--snapshot-every")?)?,
            "--queue-capacity" => args.queue_capacity = parse(&value("--queue-capacity")?)?,
            "--epoch-horizon" => args.epoch_horizon = parse(&value("--epoch-horizon")?)?,
            "--slot-ms" => args.slot_ms = parse(&value("--slot-ms")?)?,
            "--drain-slots" => args.drain_slots = parse(&value("--drain-slots")?)?,
            "--paced" => args.paced = true,
            "--trace" => args.trace = Some(value("--trace")?),
            "--chaos" => {
                args.chaos = ChaosSpec::parse(&value("--chaos")?).map_err(|e| e.to_string())?;
            }
            "--chaos-script" => {
                let path = value("--chaos-script")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read chaos script {path:?}: {e}"))?;
                args.chaos = ChaosSpec::parse_script(&text).map_err(|e| e.to_string())?;
            }
            "--tick-timeout-ms" => args.tick_timeout_ms = parse(&value("--tick-timeout-ms")?)?,
            "--checkpoint-every" => args.checkpoint_every = parse(&value("--checkpoint-every")?)?,
            "--degraded" => {
                let name = value("--degraded")?;
                args.degraded = DegradedPolicy::from_name(&name).ok_or_else(|| {
                    format!("unknown degraded policy {name:?}; accepted: buffer, shed, spill")
                })?;
            }
            "--max-restarts" => args.max_restarts = parse(&value("--max-restarts")?)?,
            "--services" => args.services = parse(&value("--services")?)?,
            "--cache-capacity" => args.cache_capacity = parse(&value("--cache-capacity")?)?,
            "--eviction" => {
                args.eviction = match value("--eviction")?.as_str() {
                    "lru" => EvictionPolicy::Lru,
                    "lfu" => EvictionPolicy::Lfu,
                    other => {
                        return Err(format!(
                            "unknown eviction policy {other:?}; accepted: lru, lfu"
                        ))
                    }
                };
            }
            "--ops-script" => {
                let path = value("--ops-script")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read ops script {path:?}: {e}"))?;
                args.ops = OpsLog::parse_jsonl(&text).map_err(|e| e.to_string())?;
            }
            "--ops-journal-out" => args.ops_journal_out = Some(value("--ops-journal-out")?),
            "--state-dir" => args.state_dir = Some(value("--state-dir")?),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--telemetry-every" => {
                args.telemetry_every = Some(parse(&value("--telemetry-every")?)?);
            }
            "--hold-metrics-ms" => args.hold_metrics_ms = parse(&value("--hold-metrics-ms")?)?,
            "--slo" => args.slo.push(
                mec_obs::SloSpec::parse(&value("--slo")?).map_err(|e| format!("--slo: {e}"))?,
            ),
            "--lifecycle-out" => args.lifecycle_out = Some(value("--lifecycle-out")?),
            "--stall-events" => args.stall_events = true,
            "--learner-events" => args.learner_events = true,
            "--flight-out" => args.flight_out = Some(value("--flight-out")?),
            "--flight-dump-on" => {
                args.flight_dump_on = Some(
                    mec_obs::FlightTriggerSet::parse(&value("--flight-dump-on")?)
                        .map_err(|e| format!("--flight-dump-on: {e}"))?,
                );
            }
            "--profile-out" => args.profile_out = Some(value("--profile-out")?),
            "--profile-folded" => args.profile_folded = Some(value("--profile-folded")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if !POLICY_NAMES.contains(&args.policy.as_str()) {
        return Err(format!(
            "unknown policy {:?}; accepted values: {}",
            args.policy,
            POLICY_NAMES.join(", ")
        ));
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    if args.shards > args.stations {
        return Err(format!(
            "--shards {} exceeds --stations {}: every shard needs at least one station",
            args.shards, args.stations
        ));
    }
    if args.queue_capacity == 0 {
        return Err("--queue-capacity must be at least 1".to_string());
    }
    if let Some(max) = args.chaos.max_shard() {
        if max >= args.shards {
            return Err(format!(
                "chaos spec targets shard {max} but --shards is {}",
                args.shards
            ));
        }
    }
    if let Some(max) = args.ops.max_station().max(args.chaos.max_station()) {
        if max >= args.stations {
            return Err(format!(
                "reconfiguration op targets station {max} but --stations is {}",
                args.stations
            ));
        }
    }
    if !args.chaos.disk_faults.is_empty() && args.state_dir.is_none() {
        return Err("disk fault injection needs a state directory (--state-dir)".to_string());
    }
    if args.flight_dump_on.is_some() && args.flight_out.is_none() {
        return Err("--flight-dump-on needs a flight sink (--flight-out)".to_string());
    }
    #[cfg(not(feature = "obs"))]
    if args.metrics_addr.is_some()
        || args.trace_out.is_some()
        || args.telemetry_every.is_some()
        || args.hold_metrics_ms > 0
        || !args.slo.is_empty()
        || args.stall_events
        || args.learner_events
        || args.flight_out.is_some()
    {
        return Err(
            "observability flags need the obs feature; rebuild with --features obs".to_string(),
        );
    }
    #[cfg(not(feature = "lifecycle"))]
    if args.lifecycle_out.is_some() {
        return Err(
            "--lifecycle-out needs the lifecycle feature; rebuild with --features lifecycle"
                .to_string(),
        );
    }
    #[cfg(not(feature = "prof"))]
    if args.profile_out.is_some() || args.profile_folded.is_some() {
        return Err(
            "profiling flags need the prof feature; rebuild with --features prof".to_string(),
        );
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("could not parse {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let topo = TopologyBuilder::new(args.stations).seed(args.seed).build();
    let population = match &args.trace {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read trace {path:?}: {e}");
                    return ExitCode::from(2);
                }
            };
            match mec_workload::codec::parse_requests(&text) {
                Ok(requests) => requests,
                Err(e) => {
                    eprintln!("cannot parse trace {path:?}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => WorkloadBuilder::new(&topo)
            .seed(args.seed)
            .count(args.requests)
            .build(),
    };
    let total = population.len();
    // A trace already carries its arrival schedule (e.g. from mec-loadgen);
    // generated populations are re-timed to the requested rate.
    let load = if args.trace.is_some() {
        LoadGen::replay(population)
    } else {
        LoadGen::poisson(population, args.rps, args.slot_ms, args.seed)
    };

    // Observability attachment: built only when a flag asks for it, so a
    // plain run keeps a private registry and its exact legacy behaviour.
    #[cfg(feature = "obs")]
    let probe = args.learner_events || args.flight_out.is_some();
    #[cfg(feature = "obs")]
    let hub = if args.metrics_addr.is_some()
        || args.trace_out.is_some()
        || args.telemetry_every.is_some()
        || args.hold_metrics_ms > 0
        || args.lifecycle_out.is_some()
        || !args.slo.is_empty()
        || args.stall_events
        || probe
    {
        let mut hub = mec_serve::ObsHub::new().with_probe(probe);
        if let Some(path) = &args.trace_out {
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(e) => {
                    eprintln!("cannot create trace file {path:?}: {e}");
                    return ExitCode::from(2);
                }
            };
            hub = hub.with_trace(mec_obs::TraceWriter::new(Box::new(
                std::io::BufWriter::new(file),
            )));
        }
        if let Some(path) = &args.lifecycle_out {
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(e) => {
                    eprintln!("cannot create lifecycle file {path:?}: {e}");
                    return ExitCode::from(2);
                }
            };
            hub = hub.with_lifecycle(mec_obs::LifecycleWriter::new(Box::new(
                std::io::BufWriter::new(file),
            )));
        }
        if let Some(path) = &args.flight_out {
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(e) => {
                    eprintln!("cannot create flight file {path:?}: {e}");
                    return ExitCode::from(2);
                }
            };
            hub = hub.with_flight(mec_obs::TraceWriter::new(Box::new(
                std::io::BufWriter::new(file),
            )));
        }
        if let Some(on) = args.flight_dump_on {
            hub = hub.with_flight_triggers(on);
        }
        if let Some(every) = args.telemetry_every {
            hub = hub.with_telemetry_every(every);
        }
        hub = hub.with_stall_events(args.stall_events);
        Some(std::sync::Arc::new(hub))
    } else {
        None
    };
    #[cfg(feature = "obs")]
    let _metrics_server = match (&args.metrics_addr, &hub) {
        (Some(addr), Some(hub)) => {
            // Live documents attach only when their producer is
            // configured: /slo.json whenever SLO specs exist, and
            // /learning.json + /flight.json whenever the probe is on.
            let mut docs = Vec::new();
            if !args.slo.is_empty() {
                docs.push(("/slo.json", hub.slo_doc()));
            }
            if probe {
                docs.push(("/learning.json", hub.learning_doc()));
                docs.push(("/flight.json", hub.flight_doc()));
            }
            match mec_obs::MetricsServer::bind_with_docs(
                addr,
                std::sync::Arc::clone(hub.registry()),
                docs,
            ) {
                Ok(server) => {
                    eprintln!("metrics: GET http://{}/metrics", server.local_addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("cannot bind metrics server on {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        _ => None,
    };
    #[cfg(feature = "obs")]
    let obs = hub.clone();
    #[cfg(not(feature = "obs"))]
    let obs = None;

    let cfg = ServeConfig {
        shards: args.shards,
        queue_capacity: args.queue_capacity,
        snapshot_every: args.snapshot_every,
        epoch_horizon: args.epoch_horizon,
        policy: args.policy.clone(),
        solver: args.solver,
        sim: mec_sim::SlotConfig {
            slot_ms: args.slot_ms,
            seed: args.seed,
            ..mec_sim::SlotConfig::default()
        },
        drain_slots: args.drain_slots,
        clock: if args.paced {
            ClockMode::Paced {
                slot_ms: args.slot_ms,
            }
        } else {
            ClockMode::Virtual
        },
        faults: mec_serve::FaultConfig {
            tick_timeout_ms: args.tick_timeout_ms,
            checkpoint_every: args.checkpoint_every,
            degraded: args.degraded,
            max_restarts: args.max_restarts,
            ..mec_serve::FaultConfig::default()
        },
        chaos: args.chaos.clone(),
        obs,
        placement: PlacementConfig {
            services: args.services,
            cache_capacity: args.cache_capacity,
            eviction: args.eviction,
            seed: args.seed,
        },
        ops: args.ops.clone(),
        state_dir: args.state_dir.as_ref().map(std::path::PathBuf::from),
        slo: args.slo.clone(),
    };

    eprintln!(
        "serving {total} requests at {} rps across {} shards ({} stations, policy {})",
        args.rps, args.shards, args.stations, args.policy
    );
    if !args.chaos.is_empty() {
        eprintln!(
            "chaos: {} scripted fault(s) armed, degraded policy {:?}",
            args.chaos.faults.len(),
            args.degraded
        );
    }
    if args.services > 0 {
        eprintln!(
            "placement: {} service(s), cache capacity {}, eviction {:?}",
            args.services, args.cache_capacity, args.eviction
        );
    }
    {
        let ops = args.ops.len() + args.chaos.ops.len();
        if ops > 0 {
            eprintln!("reconfiguration: {ops} op(s) scheduled");
        }
    }
    #[cfg(feature = "prof")]
    if args.profile_out.is_some() || args.profile_folded.is_some() {
        mec_obs::prof::reset();
        mec_obs::prof::set_enabled(true);
    }
    let outcome = match serve(&topo, load, &cfg, |snap| println!("{}", snap.to_json())) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("serve failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{}", outcome.final_snapshot.to_json());
    eprintln!(
        "done: {} slots in {:.2}s ({:.0} slots/s) | admitted {} / shed {} | {}",
        outcome.slots_run,
        outcome.wall_secs,
        outcome.slots_run as f64 / outcome.wall_secs.max(1e-9),
        outcome.final_snapshot.admitted,
        outcome.final_snapshot.shed,
        outcome.metrics,
    );
    let placement = &outcome.final_snapshot.placement;
    if !placement.is_quiet() {
        eprintln!(
            "placement: {} hit(s) / {} miss(es), {} redirect(s), {} rehomed, \
             {} install(s) ({} warm), {} held, {} shed | \
             {} join(s), {} leave(s), {} drain(s), {} handoff(s), {} entr(ies) migrated",
            placement.hits,
            placement.misses,
            placement.redirects,
            placement.rehomed,
            placement.installs_warm + placement.installs_cold,
            placement.installs_warm,
            placement.held,
            placement.placement_shed,
            placement.joins,
            placement.leaves,
            placement.drains,
            placement.handoffs,
            placement.migrated,
        );
    }
    if let Some(path) = &args.ops_journal_out {
        // Plain JSONL (replayable via --ops-script), but written through
        // the journal writer so the bytes are buffered, synced, and any
        // io error surfaces instead of vanishing.
        let write =
            mec_serve::JournalWriter::create(std::path::Path::new(path)).and_then(|mut w| {
                w.write_raw(outcome.ops_journal.as_bytes())?;
                w.sync()
            });
        if let Err(e) = write {
            eprintln!("cannot write ops journal {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("ops journal: written to {path}");
    }
    let faults = &outcome.final_snapshot.faults;
    if !faults.is_quiet() {
        eprintln!(
            "faults: {} restart(s), {} arrival(s) replayed, {} spilled, \
             {} shed while down, {} degraded shard-slot(s), recovery latency {} slot(s)",
            faults.restarts,
            faults.replayed_arrivals,
            faults.spilled,
            faults.shed_while_down,
            faults.degraded_slots,
            faults.recovery_latency_slots,
        );
    }
    #[cfg(feature = "obs")]
    {
        if let Some(hub) = &hub {
            hub.flush();
            if let Some(path) = &args.trace_out {
                eprintln!("trace: {} event(s) written to {path}", hub.trace_written());
            }
            if let Some(path) = &args.lifecycle_out {
                eprintln!(
                    "lifecycle: {} record(s) written to {path}",
                    hub.lifecycle_written()
                );
            }
            if let Some(path) = &args.flight_out {
                eprintln!(
                    "flight: {} dump line(s) written to {path}",
                    hub.flight_written()
                );
            }
        }
        if args.hold_metrics_ms > 0 {
            eprintln!("metrics: holding endpoint for {} ms", args.hold_metrics_ms);
            std::thread::sleep(std::time::Duration::from_millis(args.hold_metrics_ms));
        }
    }
    #[cfg(feature = "prof")]
    if args.profile_out.is_some() || args.profile_folded.is_some() {
        mec_obs::prof::set_enabled(false);
        let report = mec_obs::prof::take_report();
        if let Some(path) = &args.profile_out {
            if let Err(e) = std::fs::write(path, report.to_jsonl()) {
                eprintln!("cannot write profile {path:?}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "profile: {} phase(s) written to {path}",
                report.phases.len()
            );
        }
        if let Some(path) = &args.profile_folded {
            if let Err(e) = std::fs::write(path, report.render_folded()) {
                eprintln!("cannot write folded stacks {path:?}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("profile: folded stacks written to {path}");
        }
    }
    ExitCode::SUCCESS
}
