//! Open-loop Poisson load generator.
//!
//! Generates an AR request population, re-times it as a Poisson arrival
//! stream at the requested rate, and writes the schedule as a
//! `mec-workload` CSV trace (stdout by default) that `mec-serve --trace`
//! can replay.
//!
//! ```text
//! mec-loadgen --stations 100 --requests 100000 --rps 2000 --out trace.csv
//! ```

use mec_serve::LoadGen;
use mec_topology::TopologyBuilder;
use mec_workload::{write_requests, WorkloadBuilder};
use std::process::ExitCode;

struct Args {
    stations: usize,
    requests: usize,
    rps: f64,
    seed: u64,
    slot_ms: f64,
    out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            stations: 100,
            requests: 100_000,
            rps: 2_000.0,
            seed: 0,
            slot_ms: 50.0,
            out: None,
        }
    }
}

const USAGE: &str = "\
mec-loadgen: open-loop Poisson AR request trace generator

USAGE:
    mec-loadgen [OPTIONS]

OPTIONS:
    --stations <N>   base stations the requests attach to [default: 100]
    --requests <N>   requests to generate [default: 100000]
    --rps <F>        offered load, requests per second [default: 2000]
    --seed <N>       generation seed [default: 0]
    --slot-ms <F>    slot length in milliseconds [default: 50]
    --out <PATH>     write the CSV trace here instead of stdout
    --help           print this help
";

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("could not parse {s:?}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--stations" => args.stations = parse(&value("--stations")?)?,
            "--requests" => args.requests = parse(&value("--requests")?)?,
            "--rps" => args.rps = parse(&value("--rps")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--slot-ms" => args.slot_ms = parse(&value("--slot-ms")?)?,
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let topo = TopologyBuilder::new(args.stations).seed(args.seed).build();
    let population = WorkloadBuilder::new(&topo)
        .seed(args.seed)
        .count(args.requests)
        .build();
    let load = LoadGen::poisson(population, args.rps, args.slot_ms, args.seed);
    let span = load.max_arrival();
    let csv = write_requests(load.requests());

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, csv) {
                eprintln!("cannot write {path:?}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} requests spanning {span} slots to {path}",
                load.len()
            );
        }
        None => {
            print!("{csv}");
            eprintln!("generated {} requests spanning {span} slots", load.len());
        }
    }
    ExitCode::SUCCESS
}
