//! The tick source for the serving loop.
//!
//! All scheduling decisions key off the *virtual* slot index, never off
//! wall time — pacing only inserts sleeps between ticks, so a paced run
//! makes exactly the same decisions as a virtual-time run with the same
//! seed. That separation is what lets the determinism tests compare runs
//! byte for byte while the production binary still tracks real time.

use std::time::{Duration, Instant};

/// How the serving loop advances from one slot to the next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// Run slots back-to-back as fast as the shards can process them.
    /// This is the mode used by tests and batch replays.
    Virtual,
    /// Sleep so each slot occupies `slot_ms` of wall time (the paper's
    /// slot length is 50 ms). Ticks that fall behind are not skipped;
    /// the clock catches up without sleeping.
    Paced {
        /// Wall-clock length of one slot in milliseconds.
        slot_ms: f64,
    },
}

/// A monotonic slot clock.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
    started: Instant,
    ticks: u64,
}

impl Clock {
    /// Creates a clock that has not ticked yet.
    pub fn new(mode: ClockMode) -> Self {
        Self {
            mode,
            started: Instant::now(),
            ticks: 0,
        }
    }

    /// The number of completed ticks — equal to the current virtual slot.
    pub const fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Advances one slot, sleeping first if the mode paces wall time.
    pub fn tick(&mut self) {
        if let ClockMode::Paced { slot_ms } = self.mode {
            let due = self.started + Duration::from_secs_f64(self.ticks as f64 * slot_ms / 1000.0);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        self.ticks += 1;
    }

    /// Wall-clock seconds since the clock was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_mode_does_not_sleep() {
        let mut clock = Clock::new(ClockMode::Virtual);
        for _ in 0..10_000 {
            clock.tick();
        }
        assert_eq!(clock.ticks(), 10_000);
        assert!(clock.elapsed_secs() < 1.0);
    }

    #[test]
    fn paced_mode_spends_wall_time() {
        let mut clock = Clock::new(ClockMode::Paced { slot_ms: 5.0 });
        for _ in 0..4 {
            clock.tick();
        }
        // 4 ticks at 5 ms each: at least the first three gaps elapsed.
        assert!(clock.elapsed_secs() >= 0.014, "{}", clock.elapsed_secs());
    }
}
