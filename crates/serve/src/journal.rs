//! Corruption-tolerant on-disk persistence: CRC-framed journals, rotated
//! checkpoints, salvage reads, and deterministic disk-fault hooks.
//!
//! ## Why a write-ahead *mirror*
//!
//! Shard failures in this runtime are thread-level: the driver process
//! survives every chaos fault, and its in-memory supervisor state
//! (recovery base + arrival journal) is authoritative. The disk layer
//! mirrors that state through one buffered [`JournalWriter`] per file so
//! that (a) the persistence format is exercised and verified on every
//! recovery, and (b) injected disk faults — truncation, corruption,
//! latency — are detected by CRC framing, salvaged deterministically, and
//! surfaced, never trusted. A recovery prefers intact disk state (proving
//! the round-trip) and falls back to the in-memory copy otherwise, so a
//! disk fault can change recovery *counters* but never the simulation
//! outcome: same seed + same faults still serialize byte-identically.
//!
//! ## Frame format
//!
//! Every record is `[len: u32 LE][crc32: u32 LE][payload: len bytes]`,
//! where the checksum is IEEE CRC-32 over the payload. A reader walks
//! frames to end-of-file; a short header, short payload, or checksum
//! mismatch ends the walk at the last intact record (torn-write salvage),
//! with the dropped byte count reported rather than silently discarded.

use crate::chaos::{DiskFaultKind, DiskFaultSpec, DiskTarget};
use mec_sim::{EngineState, Job, Metrics, Phase, StationSlice};
use mec_topology::units::DataRate;
use mec_topology::StationId;
use mec_workload::codec::{parse_requests, write_requests};
use mec_workload::demand::DemandOutcome;
use mec_workload::request::Request;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes of framing (`len` + `crc32`) preceding every record payload.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Largest payload a frame may carry; a length field above this is treated
/// as corruption rather than an instruction to allocate gigabytes.
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `data` (the polynomial zip/png use).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Frames one payload as a length-prefixed, checksummed record.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Typed journal failures: io errors are transient (worth retrying),
/// corruption is permanent (salvage instead).
#[derive(Debug)]
pub enum JournalError {
    /// The operating system failed the read or write.
    Io(std::io::Error),
    /// A frame failed its structural or checksum validation.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Corrupt { offset, detail } => {
                write!(f, "journal corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The single buffered write path for every journal file the runtime
/// touches. Errors propagate to the caller; flush and sync points are
/// explicit so the runtime controls exactly when bytes are durable.
#[derive(Debug)]
pub struct JournalWriter {
    inner: BufWriter<File>,
    path: PathBuf,
}

impl JournalWriter {
    /// Opens `path` fresh (truncating any previous contents).
    ///
    /// # Errors
    ///
    /// Propagates the underlying open failure.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            inner: BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Opens `path` for appending (creating it if missing).
    ///
    /// # Errors
    ///
    /// Propagates the underlying open failure.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            inner: BufWriter::new(file),
            path: path.to_path_buf(),
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one CRC-framed record (buffered; call [`Self::flush`] to
    /// push it to the OS).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn append_record(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.inner.write_all(&frame_record(payload))
    }

    /// Appends raw bytes without framing — for line-oriented files (the
    /// ops journal) that must stay readable by plain-text consumers.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn write_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.write_all(bytes)
    }

    /// Flushes buffered records to the OS.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush failure.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }

    /// Flushes and then forces the OS to push the file to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush or sync failure.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.inner.flush()?;
        self.inner.get_ref().sync_all()
    }
}

/// Outcome of a salvage walk over a framed file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Salvage {
    /// Every intact payload, in file order.
    pub records: Vec<Vec<u8>>,
    /// Whether the walk ended on a bad frame rather than clean EOF.
    pub corrupt: bool,
    /// Bytes past the last intact record (truncated away by salvage).
    pub dropped_bytes: u64,
    /// What was wrong with the first bad frame, if any.
    pub detail: Option<String>,
}

/// Walks CRC frames in `bytes`, keeping every intact record and stopping
/// at the first torn or corrupt frame. Mid-file garbage is never skipped
/// over — everything from the first bad frame on is reported as dropped.
pub fn read_records(bytes: &[u8]) -> Salvage {
    let mut salvage = Salvage::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER_BYTES {
            salvage.corrupt = true;
            salvage.detail = Some(format!("torn frame header ({} bytes)", rest.len()));
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_BYTES {
            salvage.corrupt = true;
            salvage.detail = Some(format!("implausible record length {len}"));
            break;
        }
        let body = &rest[FRAME_HEADER_BYTES..];
        if body.len() < len as usize {
            salvage.corrupt = true;
            salvage.detail = Some(format!("torn payload ({} of {len} bytes)", body.len()));
            break;
        }
        let payload = &body[..len as usize];
        if crc32(payload) != crc {
            salvage.corrupt = true;
            salvage.detail = Some("checksum mismatch".to_string());
            break;
        }
        salvage.records.push(payload.to_vec());
        offset += FRAME_HEADER_BYTES + len as usize;
    }
    salvage.dropped_bytes = (bytes.len() - offset) as u64;
    salvage
}

/// Reads and salvages one framed file. A missing file reads as empty and
/// intact (nothing was ever persisted there).
///
/// # Errors
///
/// Propagates io errors other than not-found.
pub fn read_file(path: &Path) -> Result<Salvage, JournalError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Salvage::default()),
        Err(e) => return Err(e.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    Ok(read_records(&bytes))
}

/// [`read_file`] with bounded retry: io errors back off and retry (they
/// may be transient), corruption does not (re-reading bad bytes yields
/// the same bad bytes — salvage handles those). Returns the salvage plus
/// how many retries it took.
///
/// # Errors
///
/// Propagates the final io error once attempts are exhausted.
pub fn read_file_with_retry(
    path: &Path,
    attempts: u32,
    backoff_ms: u64,
) -> Result<(Salvage, u64), JournalError> {
    let mut retries = 0u64;
    let mut delay = backoff_ms;
    loop {
        match read_file(path) {
            Ok(salvage) => return Ok((salvage, retries)),
            Err(e) if retries + 1 < u64::from(attempts.max(1)) => {
                retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(delay));
                delay = delay.saturating_mul(2);
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
}

fn request_header() -> &'static str {
    static HEADER: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    HEADER
        .get_or_init(|| write_requests(&[]).trim_end().to_string())
        .as_str()
}

fn request_row(r: &Request) -> String {
    let text = write_requests(std::slice::from_ref(r));
    text.lines().nth(1).unwrap_or_default().to_string()
}

fn parse_request_row(row: &str) -> Result<Request, String> {
    let text = format!("{}\n{row}\n", request_header());
    let mut parsed = parse_requests(&text).map_err(|e| e.to_string())?;
    match parsed.len() {
        1 => Ok(parsed.remove(0)),
        n => Err(format!("expected 1 request row, got {n}")),
    }
}

/// Encodes one journaled arrival: the admission slot plus the localized
/// request, reusing the workload CSV codec (bit-exact f64 round-trip).
pub fn encode_arrival(slot: u64, request: &Request) -> Vec<u8> {
    format!("{slot}\n{}", request_row(request)).into_bytes()
}

/// Decodes an arrival record written by [`encode_arrival`].
///
/// # Errors
///
/// Returns [`JournalError::Corrupt`] on any structural mismatch.
pub fn decode_arrival(payload: &[u8]) -> Result<(u64, Request), JournalError> {
    let corrupt = |detail: String| JournalError::Corrupt { offset: 0, detail };
    let text = std::str::from_utf8(payload).map_err(|e| corrupt(format!("not utf-8: {e}")))?;
    let (slot_line, row) = text
        .split_once('\n')
        .ok_or_else(|| corrupt("missing request row".to_string()))?;
    let slot: u64 = slot_line
        .trim()
        .parse()
        .map_err(|_| corrupt(format!("bad slot '{slot_line}'")))?;
    let request = parse_request_row(row.trim_end()).map_err(corrupt)?;
    Ok((slot, request))
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn parse_opt_u64(s: &str) -> Result<Option<u64>, String> {
    if s == "-" {
        Ok(None)
    } else {
        s.parse().map(Some).map_err(|_| format!("bad number '{s}'"))
    }
}

fn phase_tag(phase: Phase) -> char {
    match phase {
        Phase::Waiting => 'W',
        Phase::Running => 'R',
        Phase::Completed => 'C',
        Phase::Expired => 'E',
        Phase::Aborted => 'A',
        Phase::Migrated => 'M',
    }
}

fn phase_of(tag: &str) -> Result<Phase, String> {
    Ok(match tag {
        "W" => Phase::Waiting,
        "R" => Phase::Running,
        "C" => Phase::Completed,
        "E" => Phase::Expired,
        "A" => Phase::Aborted,
        "M" => Phase::Migrated,
        other => return Err(format!("bad phase tag '{other}'")),
    })
}

fn encode_job(out: &mut String, job: &Job) {
    use std::fmt::Write as _;
    let realized = job.realized().map_or_else(
        || "-".to_string(),
        |o| format!("{}:{}:{}", o.rate.as_mbps(), o.prob, o.reward),
    );
    let first_station = job
        .first_station()
        .map_or_else(|| "-".to_string(), |s| s.index().to_string());
    let _ = writeln!(out, "req {}", request_row(job.request()));
    let _ = writeln!(
        out,
        "job {} {realized} {} {first_station} {} {} {}",
        phase_tag(job.phase()),
        fmt_opt_u64(job.first_service()),
        job.remaining_mb_raw(),
        fmt_opt_u64(job.completed_slot()),
        job.stalled_slots(),
    );
}

fn decode_job(req_line: &str, job_line: &str) -> Result<Job, String> {
    let row = req_line
        .strip_prefix("req ")
        .ok_or_else(|| format!("expected 'req' line, got '{req_line}'"))?;
    let request = parse_request_row(row)?;
    let body = job_line
        .strip_prefix("job ")
        .ok_or_else(|| format!("expected 'job' line, got '{job_line}'"))?;
    let fields: Vec<&str> = body.split(' ').collect();
    if fields.len() != 7 {
        return Err(format!("expected 7 job fields, got {}", fields.len()));
    }
    let phase = phase_of(fields[0])?;
    let realized = if fields[1] == "-" {
        None
    } else {
        let parts: Vec<&str> = fields[1].split(':').collect();
        if parts.len() != 3 {
            return Err(format!("bad realized demand '{}'", fields[1]));
        }
        let rate: f64 = parts[0].parse().map_err(|_| "bad realized rate")?;
        let prob: f64 = parts[1].parse().map_err(|_| "bad realized prob")?;
        let reward: f64 = parts[2].parse().map_err(|_| "bad realized reward")?;
        Some(DemandOutcome {
            rate: DataRate::mbps(rate),
            prob,
            reward,
        })
    };
    let first_service = parse_opt_u64(fields[2])?;
    let first_station = parse_opt_u64(fields[3])?.map(|i| StationId::from(i as usize));
    let remaining_mb: f64 = fields[4]
        .parse()
        .map_err(|_| format!("bad remaining_mb '{}'", fields[4]))?;
    let completed_slot = parse_opt_u64(fields[5])?;
    let stalled_slots: u64 = fields[6]
        .parse()
        .map_err(|_| format!("bad stalled_slots '{}'", fields[6]))?;
    Ok(Job::from_parts(
        request,
        phase,
        realized,
        first_service,
        first_station,
        remaining_mb,
        completed_slot,
        stalled_slots,
    ))
}

fn join_f64s(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Encodes an engine checkpoint as format v2: header fields, then jobs
/// grouped per home station so a station's slice can be carved out of the
/// serialized form without decoding unrelated stations.
pub fn encode_state(state: &EngineState) -> Vec<u8> {
    use std::fmt::Write as _;
    let metrics = &state.metrics;
    let mut out = String::from("mec-ckpt v2\n");
    let _ = writeln!(out, "next_slot {}", state.next_slot);
    let _ = writeln!(out, "slots_run {}", state.slots_run);
    let _ = writeln!(out, "finished {}", u8::from(state.finished));
    let _ = writeln!(out, "rng_word_pos {}", state.rng_word_pos);
    let _ = writeln!(
        out,
        "busy {} {}",
        state.busy_mhz_slots.len(),
        join_f64s(&state.busy_mhz_slots)
    );
    let _ = writeln!(
        out,
        "metrics {} {} {} {} {}",
        metrics.total_reward(),
        metrics.completed(),
        metrics.expired(),
        metrics.unserved(),
        metrics.aborted(),
    );
    let _ = writeln!(
        out,
        "latencies {} {}",
        metrics.latencies_ms().len(),
        join_f64s(metrics.latencies_ms())
    );
    // The per-station partition: jobs grouped by home, dense ids restored
    // on decode by sorting (each request row carries its id).
    let stations = state.busy_mhz_slots.len();
    let _ = writeln!(out, "stations {stations}");
    for station in 0..stations {
        let members: Vec<&Job> = state
            .jobs
            .iter()
            .filter(|j| j.request().home().index() == station)
            .collect();
        let _ = writeln!(out, "station {station} {}", members.len());
        for job in members {
            encode_job(&mut out, job);
        }
    }
    out.push_str("end\n");
    out.into_bytes()
}

fn corrupt(detail: String) -> JournalError {
    JournalError::Corrupt { offset: 0, detail }
}

/// Pops the next line and strips its expected tag, returning the
/// space-separated value fields.
fn next_tagged<'a>(
    lines: &mut std::str::Lines<'a>,
    tag: &str,
) -> Result<Vec<&'a str>, JournalError> {
    let line = lines
        .next()
        .ok_or_else(|| corrupt(format!("missing '{tag}' line")))?;
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| corrupt(format!("expected '{tag}', got '{line}'")))?;
    Ok(rest.split(' ').filter(|s| !s.is_empty()).collect())
}

fn u64_field(vals: &[&str], tag: &str) -> Result<u64, JournalError> {
    vals.first()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt(format!("bad '{tag}' value")))
}

fn f64_list(vals: &[&str], tag: &str) -> Result<Vec<f64>, JournalError> {
    let count: usize = vals
        .first()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt(format!("bad '{tag}' count")))?;
    if vals.len() != count + 1 {
        return Err(corrupt(format!(
            "'{tag}' declares {count} values, carries {}",
            vals.len().saturating_sub(1)
        )));
    }
    vals[1..]
        .iter()
        .map(|v| {
            v.parse()
                .map_err(|_| corrupt(format!("bad '{tag}' value '{v}'")))
        })
        .collect()
}

/// Decodes a checkpoint written by [`encode_state`].
///
/// # Errors
///
/// Returns [`JournalError::Corrupt`] on any structural mismatch.
pub fn decode_state(payload: &[u8]) -> Result<EngineState, JournalError> {
    let text = std::str::from_utf8(payload).map_err(|e| corrupt(format!("not utf-8: {e}")))?;
    let mut lines = text.lines();
    let version = next_tagged(&mut lines, "mec-ckpt")?;
    if version != ["v2"] {
        return Err(corrupt(format!(
            "unsupported checkpoint version {version:?}"
        )));
    }
    let next_slot = u64_field(&next_tagged(&mut lines, "next_slot")?, "next_slot")?;
    let slots_run = u64_field(&next_tagged(&mut lines, "slots_run")?, "slots_run")?;
    let finished = u64_field(&next_tagged(&mut lines, "finished")?, "finished")? != 0;
    let rng_word_pos = u64_field(&next_tagged(&mut lines, "rng_word_pos")?, "rng_word_pos")?;
    let busy_mhz_slots = f64_list(&next_tagged(&mut lines, "busy")?, "busy")?;
    let m = next_tagged(&mut lines, "metrics")?;
    if m.len() != 5 {
        return Err(corrupt(format!(
            "expected 5 metrics fields, got {}",
            m.len()
        )));
    }
    let total_reward: f64 = m[0]
        .parse()
        .map_err(|_| corrupt("bad total_reward".to_string()))?;
    let usize_field = |v: &str, tag: &str| -> Result<usize, JournalError> {
        v.parse().map_err(|_| corrupt(format!("bad '{tag}' value")))
    };
    let completed = usize_field(m[1], "completed")?;
    let expired = usize_field(m[2], "expired")?;
    let unserved = usize_field(m[3], "unserved")?;
    let aborted = usize_field(m[4], "aborted")?;
    let latencies_ms = f64_list(&next_tagged(&mut lines, "latencies")?, "latencies")?;
    let metrics = Metrics::from_parts(
        total_reward,
        latencies_ms,
        completed,
        expired,
        unserved,
        aborted,
    );
    let station_groups = u64_field(&next_tagged(&mut lines, "stations")?, "stations")? as usize;
    let mut jobs: Vec<Job> = Vec::new();
    for _ in 0..station_groups {
        let header = next_tagged(&mut lines, "station")?;
        if header.len() != 2 {
            return Err(corrupt("malformed station group header".to_string()));
        }
        let members: usize = header[1]
            .parse()
            .map_err(|_| corrupt("bad station job count".to_string()))?;
        for _ in 0..members {
            let req_line = lines
                .next()
                .ok_or_else(|| corrupt("truncated job record".to_string()))?;
            let job_line = lines
                .next()
                .ok_or_else(|| corrupt("truncated job record".to_string()))?;
            jobs.push(decode_job(req_line, job_line).map_err(corrupt)?);
        }
    }
    match lines.next() {
        Some("end") => {}
        other => return Err(corrupt(format!("missing 'end' trailer, got {other:?}"))),
    }
    // Dense request-id order is the engine invariant the per-station
    // grouping deliberately gave up on disk; restore it here.
    jobs.sort_by_key(|j| j.id().index());
    for (i, job) in jobs.iter().enumerate() {
        if job.id().index() != i {
            return Err(corrupt(format!(
                "job ids not dense: position {i} holds id {}",
                job.id().index()
            )));
        }
    }
    Ok(EngineState {
        next_slot,
        slots_run,
        jobs,
        busy_mhz_slots,
        metrics,
        finished,
        rng_word_pos,
    })
}

/// Encodes a handoff slice with the same job codec as checkpoints — used
/// both for moved-state byte accounting and for tests that pin the wire
/// size of a handoff.
pub fn encode_slice(slice: &StationSlice) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "slice {} {}", slice.station.index(), slice.jobs.len());
    for job in &slice.jobs {
        encode_job(&mut out, job);
    }
    out.into_bytes()
}

/// Incident counters from one shard's disk-side recovery attempt.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiskIncidents {
    /// Frames or payloads that failed CRC / structural validation.
    pub corrupt_records: u64,
    /// Bytes truncated past the last intact record (torn-write salvage).
    pub salvaged_bytes: u64,
    /// Io-error read retries spent before a read succeeded or gave up.
    pub retries: u64,
    /// Checkpoint reads that fell back from the current file to `.prev`.
    pub checkpoint_fallbacks: u64,
}

impl DiskIncidents {
    /// Whether the disk state read back completely clean.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }

    fn absorb(&mut self, other: &DiskIncidents) {
        self.corrupt_records += other.corrupt_records;
        self.salvaged_bytes += other.salvaged_bytes;
        self.retries += other.retries;
        self.checkpoint_fallbacks += other.checkpoint_fallbacks;
    }
}

/// What a shard's on-disk state yielded at recovery time.
#[derive(Debug)]
pub struct DiskRecovery {
    /// Newest intact checkpoint (current file, else `.prev`), if any.
    pub checkpoint: Option<EngineState>,
    /// Every intact journaled arrival, in append order.
    pub journal: Vec<(u64, Request)>,
    /// What went wrong (or didn't) while reading it all back.
    pub incidents: DiskIncidents,
}

const READ_ATTEMPTS: u32 = 3;
const READ_BACKOFF_MS: u64 = 5;

/// One state directory: per-shard CRC-framed arrival journals plus
/// rotated checkpoint files, all written through [`JournalWriter`]s.
///
/// Layout under the root: `shard-K.journal`, `shard-K.ckpt`,
/// `shard-K.ckpt.prev`, and `shard-K.ckpt.tmp` during atomic replacement.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    journals: Vec<Option<JournalWriter>>,
    slow_ms: Vec<u64>,
}

impl DiskStore {
    /// Creates (or truncates) the state directory for `shards` shards,
    /// opening one journal writer per shard eagerly so even an empty run
    /// leaves well-formed (empty) journal files behind.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation or file-open failures.
    pub fn create(dir: &Path, shards: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut journals = Vec::with_capacity(shards);
        for shard in 0..shards {
            let path = dir.join(format!("shard-{shard}.journal"));
            journals.push(Some(JournalWriter::create(&path)?));
            // Stale checkpoints from a previous run must not survive into
            // this one: recovery would otherwise read a checkpoint for a
            // different seed/workload and (correctly) fall back, polluting
            // the incident counters.
            for suffix in ["ckpt", "ckpt.prev", "ckpt.tmp"] {
                let stale = dir.join(format!("shard-{shard}.{suffix}"));
                match std::fs::remove_file(&stale) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            journals,
            slow_ms: vec![0; shards],
        })
    }

    /// The directory this store writes under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of one shard's arrival journal.
    pub fn journal_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.journal"))
    }

    /// Path of one shard's current checkpoint.
    pub fn checkpoint_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.ckpt"))
    }

    /// Path of one shard's previous (rotated-out) checkpoint.
    pub fn prev_checkpoint_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.ckpt.prev"))
    }

    fn consume_slowdown(&mut self, shard: usize) {
        if let Some(ms) = self.slow_ms.get_mut(shard) {
            if *ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(*ms));
                *ms = 0;
            }
        }
    }

    /// Arms a one-shot latency injection: the next disk operation for
    /// `shard` sleeps `ms` milliseconds first (chaos `slowdisk:`).
    pub fn slow_next(&mut self, shard: usize, ms: u64) {
        if let Some(slot) = self.slow_ms.get_mut(shard) {
            *slot = ms;
        }
    }

    /// Appends one admitted arrival to the shard's journal (buffered).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn append_arrival(
        &mut self,
        shard: usize,
        slot: u64,
        request: &Request,
    ) -> std::io::Result<()> {
        self.consume_slowdown(shard);
        if let Some(Some(writer)) = self.journals.get_mut(shard) {
            writer.append_record(&encode_arrival(slot, request))?;
        }
        Ok(())
    }

    /// Flushes every shard journal — the per-slot durability point.
    ///
    /// # Errors
    ///
    /// Propagates the first flush failure.
    pub fn flush(&mut self) -> std::io::Result<()> {
        for writer in self.journals.iter_mut().flatten() {
            writer.flush()?;
        }
        Ok(())
    }

    /// Atomically replaces the shard's checkpoint with `state` (rotating
    /// the old one to `.prev`), synced to stable storage. Returns the
    /// framed byte size written.
    ///
    /// # Errors
    ///
    /// Propagates write, sync, or rename failures.
    pub fn write_checkpoint(&mut self, shard: usize, state: &EngineState) -> std::io::Result<u64> {
        self.consume_slowdown(shard);
        let current = self.checkpoint_path(shard);
        let prev = self.prev_checkpoint_path(shard);
        let tmp = self.dir.join(format!("shard-{shard}.ckpt.tmp"));
        let payload = encode_state(state);
        let mut writer = JournalWriter::create(&tmp)?;
        writer.append_record(&payload)?;
        writer.sync()?;
        drop(writer);
        if current.exists() {
            std::fs::rename(&current, &prev)?;
        }
        std::fs::rename(&tmp, &current)?;
        Ok((payload.len() + FRAME_HEADER_BYTES) as u64)
    }

    /// Rewrites the shard's journal keeping only records with slot
    /// `>= before_slot` — mirrors the in-memory prune that follows a
    /// checkpoint adoption, so the file stays bounded by the checkpoint
    /// interval instead of growing with run length.
    ///
    /// # Errors
    ///
    /// Propagates read or rewrite failures.
    pub fn prune_journal(&mut self, shard: usize, before_slot: u64) -> std::io::Result<()> {
        let path = self.journal_path(shard);
        if let Some(slot) = self.journals.get_mut(shard) {
            if let Some(writer) = slot.as_mut() {
                writer.flush()?;
            }
            *slot = None;
        }
        let salvage = match read_file(&path) {
            Ok(s) => s,
            Err(JournalError::Io(e)) => return Err(e),
            // A corrupt variant is unreachable from read_file, but keep
            // the journal usable either way: rewrite what salvaged.
            Err(JournalError::Corrupt { .. }) => Salvage::default(),
        };
        let tmp = self.dir.join(format!("shard-{shard}.journal.tmp"));
        let mut writer = JournalWriter::create(&tmp)?;
        for record in &salvage.records {
            match decode_arrival(record) {
                Ok((slot, _)) if slot >= before_slot => writer.append_record(record)?,
                Ok(_) => {}
                // Undecodable-but-CRC-valid records cannot be produced by
                // this writer; drop them rather than resurrect garbage.
                Err(_) => {}
            }
        }
        writer.sync()?;
        drop(writer);
        std::fs::rename(&tmp, &path)?;
        if let Some(slot) = self.journals.get_mut(shard) {
            *slot = Some(JournalWriter::append(&path)?);
        }
        Ok(())
    }

    /// Rewrites the shard's journal from scratch with `entries` — the
    /// heal path after a recovery found the on-disk copy diverged from
    /// the authoritative in-memory journal.
    ///
    /// # Errors
    ///
    /// Propagates write, sync, or rename failures.
    pub fn rewrite_journal(
        &mut self,
        shard: usize,
        entries: &[(u64, Request)],
    ) -> std::io::Result<()> {
        let path = self.journal_path(shard);
        if let Some(slot) = self.journals.get_mut(shard) {
            *slot = None;
        }
        let tmp = self.dir.join(format!("shard-{shard}.journal.tmp"));
        let mut writer = JournalWriter::create(&tmp)?;
        for (slot, request) in entries {
            writer.append_record(&encode_arrival(*slot, request))?;
        }
        writer.sync()?;
        drop(writer);
        std::fs::rename(&tmp, &path)?;
        if let Some(slot) = self.journals.get_mut(shard) {
            *slot = Some(JournalWriter::append(&path)?);
        }
        Ok(())
    }

    /// Reads a shard's persisted state back for recovery: newest intact
    /// checkpoint plus the salvaged arrival journal. Infallible by
    /// design — every failure mode degrades to "less disk state" with the
    /// incident counters telling the story, because the caller always has
    /// the authoritative in-memory copy to fall back on.
    pub fn recover_shard(&mut self, shard: usize) -> DiskRecovery {
        self.consume_slowdown(shard);
        let mut incidents = DiskIncidents::default();
        // Journal writers buffer; everything must be on disk before the
        // read-back or the tail would look torn.
        if let Some(Some(writer)) = self.journals.get_mut(shard) {
            if writer.flush().is_err() {
                incidents.retries += 1;
            }
        }
        let checkpoint = self.read_checkpoint(shard, &mut incidents);
        let mut journal = Vec::new();
        match read_file_with_retry(&self.journal_path(shard), READ_ATTEMPTS, READ_BACKOFF_MS) {
            Ok((salvage, retries)) => {
                incidents.retries += retries;
                if salvage.corrupt {
                    incidents.corrupt_records += 1;
                    incidents.salvaged_bytes += salvage.dropped_bytes;
                }
                for record in &salvage.records {
                    match decode_arrival(record) {
                        Ok(pair) => journal.push(pair),
                        Err(_) => {
                            // Same torn-write rule one level up: stop at
                            // the first undecodable record, count it.
                            incidents.corrupt_records += 1;
                            break;
                        }
                    }
                }
            }
            Err(JournalError::Io(_)) => incidents.retries += u64::from(READ_ATTEMPTS) - 1,
            Err(JournalError::Corrupt { .. }) => incidents.corrupt_records += 1,
        }
        DiskRecovery {
            checkpoint,
            journal,
            incidents,
        }
    }

    fn read_checkpoint(&self, shard: usize, incidents: &mut DiskIncidents) -> Option<EngineState> {
        let current = self.checkpoint_path(shard);
        let prev = self.prev_checkpoint_path(shard);
        match Self::read_one_checkpoint(&current) {
            Ok(state) => return state,
            Err(i) => {
                incidents.absorb(&i);
                incidents.checkpoint_fallbacks += 1;
            }
        }
        match Self::read_one_checkpoint(&prev) {
            Ok(state) => state,
            Err(i) => {
                incidents.absorb(&i);
                None
            }
        }
    }

    /// Ok(None): file absent (nothing checkpointed yet — not an incident).
    /// Err: file present but unreadable/corrupt, with the counters to add.
    fn read_one_checkpoint(path: &Path) -> Result<Option<EngineState>, DiskIncidents> {
        if !path.exists() {
            return Ok(None);
        }
        let mut incidents = DiskIncidents::default();
        let salvage = match read_file_with_retry(path, READ_ATTEMPTS, READ_BACKOFF_MS) {
            Ok((salvage, retries)) => {
                incidents.retries += retries;
                salvage
            }
            Err(JournalError::Io(_)) => {
                incidents.retries += u64::from(READ_ATTEMPTS) - 1;
                return Err(incidents);
            }
            Err(JournalError::Corrupt { .. }) => {
                incidents.corrupt_records += 1;
                return Err(incidents);
            }
        };
        if salvage.corrupt || salvage.records.len() != 1 {
            incidents.corrupt_records += 1;
            incidents.salvaged_bytes += salvage.dropped_bytes;
            return Err(incidents);
        }
        match decode_state(&salvage.records[0]) {
            Ok(state) => Ok(Some(state)),
            Err(_) => {
                incidents.corrupt_records += 1;
                Err(incidents)
            }
        }
    }

    /// Applies one chaos disk fault to this store's files. Returns the
    /// number of bytes affected (0 for latency injection).
    ///
    /// # Errors
    ///
    /// Propagates io failures manipulating the target file.
    pub fn apply_fault(&mut self, fault: &DiskFaultSpec) -> std::io::Result<u64> {
        let path = match fault.target {
            DiskTarget::Journal => self.journal_path(fault.shard),
            DiskTarget::Checkpoint => self.checkpoint_path(fault.shard),
        };
        match fault.kind {
            DiskFaultKind::SlowDisk { ms } => {
                self.slow_next(fault.shard, ms);
                Ok(0)
            }
            DiskFaultKind::Truncate { bytes } => {
                // The buffered writer must not later append past the cut
                // at a stale offset; flush first so the cut is final.
                if let Some(Some(writer)) = self.journals.get_mut(fault.shard) {
                    if matches!(fault.target, DiskTarget::Journal) {
                        writer.flush()?;
                    }
                }
                let file = OpenOptions::new().write(true).open(&path)?;
                let len = file.metadata()?.len();
                let cut = bytes.min(len);
                file.set_len(len - cut)?;
                file.sync_all()?;
                if matches!(fault.target, DiskTarget::Journal) {
                    if let Some(slot) = self.journals.get_mut(fault.shard) {
                        *slot = Some(JournalWriter::append(&path)?);
                    }
                }
                Ok(cut)
            }
            DiskFaultKind::Corrupt { bytes } => {
                if let Some(Some(writer)) = self.journals.get_mut(fault.shard) {
                    if matches!(fault.target, DiskTarget::Journal) {
                        writer.flush()?;
                    }
                }
                let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                let len = file.metadata()?.len();
                if len == 0 {
                    return Ok(0);
                }
                let span = bytes.min(len);
                let start = len - span;
                file.seek(SeekFrom::Start(start))?;
                let mut buf = vec![0u8; span as usize];
                file.read_exact(&mut buf)?;
                for b in &mut buf {
                    *b ^= 0x5A;
                }
                file.seek(SeekFrom::Start(start))?;
                file.write_all(&buf)?;
                file.sync_all()?;
                Ok(span)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_sim::{Engine, SlotConfig};
    use mec_topology::TopologyBuilder;
    use mec_workload::WorkloadBuilder;

    fn sample_requests(n: usize) -> Vec<Request> {
        let topo = TopologyBuilder::new(6).seed(5).build();
        WorkloadBuilder::new(&topo).seed(5).count(n).build()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_and_salvage_is_clean() {
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"gamma rays"];
        let mut bytes = Vec::new();
        for p in &payloads {
            bytes.extend_from_slice(&frame_record(p));
        }
        let salvage = read_records(&bytes);
        assert!(!salvage.corrupt);
        assert_eq!(salvage.dropped_bytes, 0);
        assert_eq!(salvage.records, payloads);
    }

    #[test]
    fn torn_tail_salvages_to_last_valid_record() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame_record(b"first"));
        bytes.extend_from_slice(&frame_record(b"second"));
        let full = bytes.len();
        bytes.truncate(full - 3); // tear the second record's payload
        let salvage = read_records(&bytes);
        assert!(salvage.corrupt);
        assert_eq!(salvage.records, vec![b"first".to_vec()]);
        assert!(salvage.dropped_bytes > 0);
        assert!(salvage.detail.unwrap().contains("torn payload"));
    }

    #[test]
    fn flipped_bytes_fail_crc_and_stop_the_walk() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame_record(b"keep me"));
        let tail_at = bytes.len();
        bytes.extend_from_slice(&frame_record(b"corrupt me"));
        bytes.extend_from_slice(&frame_record(b"unreachable"));
        bytes[tail_at + FRAME_HEADER_BYTES] ^= 0xFF;
        let salvage = read_records(&bytes);
        assert!(salvage.corrupt);
        assert_eq!(salvage.records, vec![b"keep me".to_vec()]);
        assert_eq!(salvage.detail.as_deref(), Some("checksum mismatch"));
    }

    #[test]
    fn implausible_length_is_corruption_not_allocation() {
        let mut bytes = frame_record(b"ok");
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let salvage = read_records(&bytes);
        assert_eq!(salvage.records.len(), 1);
        assert!(salvage.corrupt);
        assert!(salvage.detail.unwrap().contains("implausible"));
    }

    #[test]
    fn arrival_records_roundtrip_bit_exact() {
        for (i, r) in sample_requests(10).into_iter().enumerate() {
            let payload = encode_arrival(i as u64 * 3, &r);
            let (slot, back) = decode_arrival(&payload).unwrap();
            assert_eq!(slot, i as u64 * 3);
            assert_eq!(back, r);
        }
    }

    #[test]
    fn engine_state_roundtrips_through_v2_codec() {
        let topo = TopologyBuilder::new(6).seed(5).build();
        let paths = topo.shortest_paths();
        let requests = sample_requests(12);
        let policy =
            crate::policy::policy_from_name("Greedy", 100, mec_core::SolverKind::default())
                .unwrap();
        let mut engine = Engine::new(&topo, &paths, requests, SlotConfig::default());
        let mut policy = policy;
        for _ in 0..7 {
            engine.step(policy.as_mut()).unwrap();
        }
        let state = engine.checkpoint();
        let payload = encode_state(&state);
        let back = decode_state(&payload).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn corrupt_state_payload_reports_typed_error() {
        let err = decode_state(b"mec-ckpt v9\n").unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }));
        assert!(err.to_string().contains("unsupported"));
        let err = decode_state(b"not a checkpoint").unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }));
    }

    #[test]
    fn store_persists_and_recovers_journal_and_checkpoint() {
        let dir = std::env::temp_dir().join(format!(
            "mec-journal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskStore::create(&dir, 2).unwrap();
        let requests = sample_requests(4);
        for (i, r) in requests.iter().enumerate() {
            store.append_arrival(i % 2, i as u64, r).unwrap();
        }
        store.flush().unwrap();
        let state = EngineState::genesis(3);
        let bytes = store.write_checkpoint(0, &state).unwrap();
        assert!(bytes > 0);
        let rec = store.recover_shard(0);
        assert!(rec.incidents.is_clean(), "{:?}", rec.incidents);
        assert_eq!(rec.checkpoint, Some(state));
        assert_eq!(rec.journal.len(), 2);
        assert_eq!(rec.journal[0].1, requests[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotation_falls_back_to_prev_when_current_truncated() {
        let dir = std::env::temp_dir().join(format!(
            "mec-journal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskStore::create(&dir, 1).unwrap();
        let old = EngineState::genesis(2);
        let mut newer = EngineState::genesis(2);
        newer.next_slot = 8;
        newer.slots_run = 8;
        store.write_checkpoint(0, &old).unwrap();
        store.write_checkpoint(0, &newer).unwrap();
        // Tear the current checkpoint; .prev must win.
        let fault = DiskFaultSpec {
            shard: 0,
            slot: 0,
            target: DiskTarget::Checkpoint,
            kind: DiskFaultKind::Truncate { bytes: 9 },
        };
        store.apply_fault(&fault).unwrap();
        let rec = store.recover_shard(0);
        assert_eq!(rec.checkpoint, Some(old));
        assert_eq!(rec.incidents.checkpoint_fallbacks, 1);
        assert!(rec.incidents.corrupt_records >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_corruption_salvages_prefix_and_counts() {
        let dir = std::env::temp_dir().join(format!(
            "mec-journal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskStore::create(&dir, 1).unwrap();
        let requests = sample_requests(3);
        for (i, r) in requests.iter().enumerate() {
            store.append_arrival(0, i as u64, r).unwrap();
        }
        store.flush().unwrap();
        let fault = DiskFaultSpec {
            shard: 0,
            slot: 0,
            target: DiskTarget::Journal,
            kind: DiskFaultKind::Corrupt { bytes: 5 },
        };
        store.apply_fault(&fault).unwrap();
        let rec = store.recover_shard(0);
        assert_eq!(rec.journal.len(), 2, "last record corrupted away");
        assert!(rec.incidents.corrupt_records >= 1);
        assert!(rec.incidents.salvaged_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_rewrites_journal_suffix() {
        let dir = std::env::temp_dir().join(format!(
            "mec-journal-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskStore::create(&dir, 1).unwrap();
        let requests = sample_requests(6);
        for (i, r) in requests.iter().enumerate() {
            store.append_arrival(0, i as u64, r).unwrap();
        }
        store.prune_journal(0, 4).unwrap();
        let rec = store.recover_shard(0);
        assert!(rec.incidents.is_clean());
        assert_eq!(rec.journal.len(), 2);
        assert_eq!(rec.journal[0].0, 4);
        // The writer stays usable after the rewrite.
        store.append_arrival(0, 9, &requests[0]).unwrap();
        let rec = store.recover_shard(0);
        assert_eq!(rec.journal.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slice_encoding_is_nonempty_for_moved_jobs() {
        let requests = sample_requests(2);
        let slice = StationSlice {
            station: 0.into(),
            jobs: requests.into_iter().map(Job::new).collect(),
        };
        let bytes = encode_slice(&slice);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("slice 0 2\n"));
        assert_eq!(text.matches("req ").count(), 2);
    }
}
