//! End-to-end offline pipeline: topology → workload → LP → rounding →
//! metrics, with cross-algorithm invariants on shared worlds.

use mec_ar::prelude::*;

fn world(n: usize, stations: usize, seed: u64) -> (Instance, Realizations) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
    let instance = Instance::new(topo, requests, InstanceParams::default());
    let realized = Realizations::draw(&instance, seed);
    (instance, realized)
}

fn all_offline(seed: u64) -> Vec<Box<dyn OfflineAlgorithm>> {
    vec![
        Box::new(Appro::new(seed)),
        Box::new(Heu::new(seed)),
        Box::new(HeuKkt::new()),
        Box::new(Ocorp::new()),
        Box::new(Greedy::new()),
    ]
}

#[test]
fn every_algorithm_solves_every_seed() {
    for seed in 0..4 {
        let (instance, realized) = world(40, 6, seed);
        for algo in all_offline(seed) {
            let out = algo.solve(&instance, &realized).unwrap();
            // Reward can never exceed the sum of realized rewards.
            let max: f64 = (0..instance.request_count())
                .map(|j| realized.outcome(j).reward)
                .sum();
            assert!(
                out.metrics().total_reward() <= max + 1e-9,
                "{}",
                algo.name()
            );
            // Admitted + expired = all requests.
            assert_eq!(
                out.metrics().completed() + out.metrics().expired(),
                instance.request_count(),
                "{} lost requests",
                algo.name()
            );
        }
    }
}

#[test]
fn assignments_are_deadline_feasible_for_all_algorithms() {
    let (instance, realized) = world(60, 8, 5);
    for algo in all_offline(5) {
        let out = algo.solve(&instance, &realized).unwrap();
        for (j, a) in out.assignment().iter().enumerate() {
            if let Some(s) = a {
                assert!(
                    instance.offline_feasible(j, *s),
                    "{} violated the deadline of request {j}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn proposed_algorithms_beat_baselines_on_average() {
    // The paper's headline: Appro/Heu outperform OCORP, Greedy, HeuKKT.
    // Averaged over seeds to wash out rounding noise.
    let seeds = 5;
    let mut totals = [0.0f64; 5]; // appro, heu, heukkt, ocorp, greedy
    for seed in 0..seeds {
        let (instance, realized) = world(120, 12, seed);
        for (k, algo) in all_offline(seed).iter().enumerate() {
            totals[k] += algo
                .solve(&instance, &realized)
                .unwrap()
                .metrics()
                .total_reward();
        }
    }
    let [appro, heu, heukkt, ocorp, greedy] = totals;
    assert!(
        heu >= appro * 0.98,
        "Heu ({heu}) should be >= Appro ({appro})"
    );
    assert!(
        appro > heukkt,
        "Appro ({appro}) must beat HeuKKT ({heukkt})"
    );
    assert!(appro > ocorp, "Appro ({appro}) must beat OCORP ({ocorp})");
    assert!(
        appro > greedy,
        "Appro ({appro}) must beat Greedy ({greedy})"
    );
    assert!(
        heukkt > ocorp,
        "HeuKKT ({heukkt}) must beat OCORP ({ocorp})"
    );
}

#[test]
fn latency_ordering_matches_paper() {
    // OCORP/Greedy trade reward for latency: their average latencies sit
    // below Appro/Heu (Fig 3(b)).
    let seeds = 4;
    let mut lat = [0.0f64; 5];
    for seed in 0..seeds {
        let (instance, realized) = world(120, 12, seed);
        for (k, algo) in all_offline(seed).iter().enumerate() {
            lat[k] += algo
                .solve(&instance, &realized)
                .unwrap()
                .metrics()
                .avg_latency_ms();
        }
    }
    let [appro, heu, _heukkt, ocorp, greedy] = lat;
    assert!(ocorp < appro, "OCORP latency must be below Appro");
    assert!(greedy < heu, "Greedy latency must be below Heu");
}

#[test]
fn lp_objective_upper_bounds_exact_expected_optimum() {
    use mec_ar::core::slotlp::{SlotLp, Truncation};
    for seed in 0..3 {
        let (instance, _) = world(10, 3, seed);
        let subset: Vec<usize> = (0..10).collect();
        let lp = SlotLp::build(&instance, &subset, Truncation::Standard);
        let lp_opt = lp.solve(10).unwrap().objective();
        let (ilp_opt, _) = Exact::new().solve_ilp(&instance).unwrap();
        // Lemma 1: LPOpt >= Opt. The slot-LP truncates rewards by residual
        // capacity (Eq. 8) while ILP-RM uses full expected rewards, so
        // compare against the ILP re-scored with Eq. 8 semantics — the LP
        // bound must at least cover 1x that. A conservative check: LPOpt
        // within a small factor of the ILP optimum, never collapsing.
        assert!(lp_opt > 0.0);
        assert!(
            lp_opt >= ilp_opt * 0.5,
            "seed {seed}: LP {lp_opt} suspiciously far below ILP {ilp_opt}"
        );
    }
}

#[test]
fn degenerate_worlds() {
    // No requests.
    let (instance, realized) = world(0, 4, 0);
    for algo in all_offline(0) {
        let out = algo.solve(&instance, &realized).unwrap();
        assert_eq!(out.metrics().total_reward(), 0.0);
    }
    // One station, many requests — capacity-bound but must not panic.
    let (instance, realized) = world(30, 1, 1);
    for algo in all_offline(1) {
        let out = algo.solve(&instance, &realized).unwrap();
        assert!(out.admitted() <= 30);
    }
}
