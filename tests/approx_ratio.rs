//! Theorem-1 Monte-Carlo check: the verbatim one-round `Appro` achieves at
//! least 1/8 of the exact expected optimum on small instances, and the LP
//! optimum never falls below the rounding's realized value in expectation.

use mec_ar::core::slotlp::{SlotLp, Truncation};
use mec_ar::prelude::*;

fn small_world(seed: u64) -> Instance {
    let topo = TopologyBuilder::new(3).seed(seed).build();
    let requests = WorkloadBuilder::new(&topo).seed(seed).count(8).build();
    Instance::new(topo, requests, InstanceParams::default())
}

#[test]
fn one_round_appro_is_at_least_an_eighth_of_opt() {
    for seed in 0..4 {
        let instance = small_world(seed);
        let (opt, _) = Exact::new().solve_ilp(&instance).unwrap();
        let trials = 40;
        let mut mean = 0.0;
        for t in 0..trials {
            let realized = Realizations::draw(&instance, seed * 1000 + t);
            let out = Appro::new(seed * 77 + t)
                .rounds(1)
                .solve(&instance, &realized)
                .unwrap();
            mean += out.metrics().total_reward() / trials as f64;
        }
        let ratio = mean / opt;
        assert!(
            ratio >= 0.125,
            "seed {seed}: E[Appro]/Opt = {ratio:.3} below the 1/8 guarantee"
        );
    }
}

#[test]
fn backfilled_appro_dominates_one_round() {
    for seed in 0..4 {
        let instance = small_world(seed);
        let trials = 25;
        let (mut one, mut many) = (0.0, 0.0);
        for t in 0..trials {
            let realized = Realizations::draw(&instance, seed * 999 + t);
            one += Appro::new(t)
                .rounds(1)
                .solve(&instance, &realized)
                .unwrap()
                .metrics()
                .total_reward();
            many += Appro::new(t)
                .solve(&instance, &realized)
                .unwrap()
                .metrics()
                .total_reward();
        }
        assert!(
            many >= one,
            "seed {seed}: backfilling reduced reward ({many} < {one})"
        );
    }
}

#[test]
fn lp_mass_respects_constraint_nine() {
    let instance = small_world(1);
    let subset: Vec<usize> = (0..instance.request_count()).collect();
    let lp = SlotLp::build(&instance, &subset, Truncation::Standard);
    let frac = lp.solve(subset.len()).unwrap();
    for j in 0..subset.len() {
        assert!(frac.mass(j) <= 1.0 + 1e-6);
    }
}

#[test]
fn exact_beats_or_matches_every_heuristic_in_expectation() {
    // The exact ILP maximizes the expected objective; Monte-Carlo realized
    // rewards of any heuristic must not exceed it meaningfully.
    for seed in 0..2 {
        let instance = small_world(seed);
        let (opt, _) = Exact::new().solve_ilp(&instance).unwrap();
        let trials = 30;
        let mut heu_mean = 0.0;
        for t in 0..trials {
            let realized = Realizations::draw(&instance, seed * 555 + t);
            heu_mean += Heu::new(t)
                .solve(&instance, &realized)
                .unwrap()
                .metrics()
                .total_reward()
                / trials as f64;
        }
        // Heuristic realized mean can exceed the expectation-planned ILP's
        // objective slightly (it adapts to realizations); allow 15% slack
        // but catch gross inversions that would signal a broken Exact.
        assert!(
            heu_mean <= opt * 1.15,
            "seed {seed}: Heu mean {heu_mean} far above exact optimum {opt}"
        );
    }
}
