//! Cross-crate checks of the clairvoyant hindsight bound and the
//! distributed task placements `Heu` produces.

use mec_ar::core::placement::TaskPlacement;
use mec_ar::prelude::*;

fn world(seed: u64, n: usize, stations: usize) -> (Instance, Realizations) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let requests = WorkloadBuilder::new(&topo).seed(seed).count(n).build();
    let instance = Instance::new(topo, requests, InstanceParams::default());
    let realized = Realizations::draw(&instance, seed);
    (instance, realized)
}

#[test]
fn hindsight_dominates_and_orders_sanely() {
    let mut captured = 0.0;
    let mut bound_sum = 0.0;
    for seed in 0..3 {
        let (instance, realized) = world(seed, 80, 8);
        let bound = hindsight_bound(&instance, &realized).unwrap();
        let heu = Heu::new(seed)
            .solve(&instance, &realized)
            .unwrap()
            .metrics()
            .total_reward();
        assert!(heu <= bound + 1e-6);
        captured += heu;
        bound_sum += bound;
    }
    // The paper's design claims a small price of uncertainty: Heu should
    // capture well over half of clairvoyance on these saturated worlds.
    assert!(
        captured >= 0.6 * bound_sum,
        "Heu captured only {:.1}% of hindsight",
        100.0 * captured / bound_sum
    );
}

#[test]
fn consolidated_placement_latency_equals_eq2_everywhere() {
    let (instance, _) = world(3, 10, 6);
    for j in 0..10 {
        let k = instance.requests()[j].task_count();
        for s in instance.topo().station_ids() {
            let p = TaskPlacement::consolidated(s, k);
            let a = p.latency(&instance, j).unwrap().as_ms();
            let b = instance.offline_latency(j, s).unwrap().as_ms();
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn moving_a_task_never_reduces_latency_below_best_consolidation() {
    // Distribution adds transmission legs; on a request's *home* station
    // the consolidated placement is transmission-free, so any split from
    // home is at least as slow.
    let (instance, _) = world(5, 8, 5);
    for j in 0..8 {
        let home = instance.requests()[j].home();
        let k = instance.requests()[j].task_count();
        let base = TaskPlacement::consolidated(home, k);
        let base_lat = base.latency(&instance, j).unwrap().as_ms();
        for target in instance.topo().station_ids() {
            let moved = base.with_task_moved(k - 1, target);
            let lat = moved.latency(&instance, j).unwrap().as_ms();
            // Processing speed differences can offset transmission, but the
            // transmission part alone is non-negative; allow the processing
            // delta explicitly.
            let proc_delta = instance.requests()[j].tasks()[k - 1].complexity()
                * (instance.topo().station(target).unit_proc_delay().as_ms()
                    - instance.topo().station(home).unit_proc_delay().as_ms());
            assert!(
                lat + 1e-9 >= base_lat + proc_delta.min(0.0),
                "request {j}: split faster than physics allows"
            );
        }
    }
}

#[test]
fn heu_placements_respect_deadlines_even_when_distributed() {
    // On tight capacity Heu migrates tasks; every reported latency must
    // still respect the 200 ms requirement (Theorem 2's feasibility).
    for seed in 0..4 {
        let (instance, realized) = world(seed, 90, 4);
        let out = Heu::new(seed).solve(&instance, &realized).unwrap();
        for &lat in out.metrics().latencies_ms() {
            assert!(lat <= 200.0 + 1e-6, "seed {seed}: latency {lat}");
        }
    }
}
