//! Workload exchange: an exported workload replayed from its text form
//! drives a bit-identical simulation.

use mec_ar::prelude::*;

#[test]
fn exported_workload_replays_identically() {
    let topo = TopologyBuilder::new(8).seed(21).build();
    let requests = WorkloadBuilder::new(&topo)
        .seed(21)
        .count(40)
        .duration_range(20, 60)
        .arrivals(ArrivalProcess::UniformOver { horizon: 80 })
        .build();

    // Round-trip through the text codec.
    let text = write_requests(&requests);
    let replayed = parse_requests(&text).expect("own output parses");
    assert_eq!(requests, replayed);

    // Identical runs: same topology, same seed, original vs replayed.
    let paths = topo.shortest_paths();
    let cfg = SlotConfig {
        horizon: 200,
        seed: 21,
        ..Default::default()
    };
    let run = |reqs: Vec<Request>| {
        let mut engine = Engine::new(&topo, &paths, reqs, cfg);
        let mut policy = DynamicRr::new(DynamicRrConfig {
            horizon_hint: cfg.horizon,
            ..Default::default()
        });
        engine.run(&mut policy).expect("legal schedules")
    };
    assert_eq!(run(requests), run(replayed));
}

#[test]
fn foreign_edits_are_validated() {
    let topo = TopologyBuilder::new(3).seed(2).build();
    let requests = WorkloadBuilder::new(&topo).seed(2).count(3).build();
    let mut text = write_requests(&requests);
    // Corrupt one probability: the distribution no longer sums to 1.
    text = text.replacen(":0.3", ":0.9", 1);
    assert!(parse_requests(&text).is_err());
}
