//! End-to-end online pipeline: streaming arrivals through the slot engine
//! under every policy, with conservation and ordering invariants.

use mec_ar::prelude::*;

fn world(n: usize, stations: usize, seed: u64) -> (Topology, Vec<Request>, SlotConfig) {
    let topo = TopologyBuilder::new(stations).seed(seed).build();
    let params = InstanceParams::default();
    let requests = WorkloadBuilder::new(&topo)
        .seed(seed)
        .count(n)
        .duration_range(60, 120)
        .arrivals(ArrivalProcess::UniformOver { horizon: 200 })
        .build();
    let cfg = SlotConfig {
        horizon: 400,
        c_unit: params.c_unit,
        slot_ms: params.slot_ms,
        seed,
        ..Default::default()
    };
    (topo, requests, cfg)
}

fn policies(horizon: u64) -> Vec<Box<dyn SlotPolicy>> {
    vec![
        Box::new(DynamicRr::new(DynamicRrConfig {
            horizon_hint: horizon,
            ..Default::default()
        })),
        Box::new(OnlineHeuKkt::new()),
        Box::new(OnlineOcorp::new()),
        Box::new(OnlineGreedy::new()),
    ]
}

#[test]
fn conservation_under_every_policy() {
    let (topo, requests, cfg) = world(80, 8, 3);
    let paths = topo.shortest_paths();
    for mut policy in policies(cfg.horizon) {
        let mut engine = Engine::new(&topo, &paths, requests.clone(), cfg);
        let metrics = engine.run(policy.as_mut()).unwrap();
        assert_eq!(
            metrics.completed() + metrics.expired() + metrics.unserved(),
            requests.len(),
            "{} lost requests",
            policy.name()
        );
        // Completed jobs earned exactly their realized rewards.
        let credited: f64 = engine
            .jobs()
            .iter()
            .filter(|j| j.completed_slot().is_some())
            .map(|j| j.realized().unwrap().reward)
            .sum();
        assert!(
            (credited - metrics.total_reward()).abs() < 1e-6,
            "{} reward mismatch",
            policy.name()
        );
    }
}

#[test]
fn every_served_job_met_its_deadline() {
    let (topo, requests, cfg) = world(100, 10, 9);
    let paths = topo.shortest_paths();
    for mut policy in policies(cfg.horizon) {
        let mut engine = Engine::new(&topo, &paths, requests.clone(), cfg);
        let _ = engine.run(policy.as_mut()).unwrap();
        for job in engine.jobs() {
            if job.first_service().is_some() {
                let latency = job.experienced_latency(&topo, &paths, cfg.slot_ms).unwrap();
                assert!(
                    latency.as_ms() <= job.request().deadline().as_ms() + 1e-6,
                    "{}: job {} served late ({latency})",
                    policy.name(),
                    job.id()
                );
            }
        }
    }
}

#[test]
fn dynamic_rr_wins_under_saturation() {
    // Fig 4's |R| = 300 operating point, averaged over seeds.
    let mut rewards = [0.0f64; 4];
    let seeds = 3;
    for seed in 0..seeds {
        let (topo, requests, cfg) = world(300, 20, seed);
        let paths = topo.shortest_paths();
        for (k, mut policy) in policies(cfg.horizon).into_iter().enumerate() {
            let mut engine = Engine::new(&topo, &paths, requests.clone(), cfg);
            rewards[k] += engine.run(policy.as_mut()).unwrap().total_reward();
        }
    }
    let [dynrr, heukkt, ocorp, greedy] = rewards;
    assert!(
        dynrr > heukkt,
        "DynamicRR ({dynrr}) must beat HeuKKT ({heukkt})"
    );
    assert!(
        dynrr > ocorp,
        "DynamicRR ({dynrr}) must beat OCORP ({ocorp})"
    );
    assert!(
        dynrr > greedy,
        "DynamicRR ({dynrr}) must beat Greedy ({greedy})"
    );
}

#[test]
fn unsaturated_world_completes_nearly_everything() {
    let (topo, requests, cfg) = world(40, 12, 2);
    let paths = topo.shortest_paths();
    for mut policy in policies(cfg.horizon) {
        let mut engine = Engine::new(&topo, &paths, requests.clone(), cfg);
        let metrics = engine.run(policy.as_mut()).unwrap();
        assert!(
            metrics.completed() >= 38,
            "{} completed only {}",
            policy.name(),
            metrics.completed()
        );
    }
}

#[test]
fn utilization_and_trace_are_consistent() {
    let (topo, requests, cfg) = world(60, 6, 11);
    let paths = topo.shortest_paths();
    let mut engine = Engine::new(&topo, &paths, requests.clone(), cfg);
    engine.enable_trace(100_000);
    let metrics = engine
        .run(&mut DynamicRr::new(DynamicRrConfig {
            horizon_hint: cfg.horizon,
            ..Default::default()
        }))
        .unwrap();

    // Utilization fractions are valid and positive somewhere.
    let util = engine.utilization();
    assert_eq!(util.len(), topo.station_count());
    assert!(util.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
    assert!(engine.avg_utilization() > 0.0);

    // The trace agrees with the metrics: one Arrived per request, one
    // Completed per completion, one Expired per expiry.
    let trace = engine.trace().unwrap();
    assert_eq!(trace.dropped(), 0, "trace capacity too small for the test");
    use mec_ar::sim::Event;
    let count = |f: &dyn Fn(&Event) -> bool| trace.events().iter().filter(|e| f(&e.event)).count();
    assert_eq!(
        count(&|e| matches!(e, Event::Arrived { .. })),
        requests.len()
    );
    assert_eq!(
        count(&|e| matches!(e, Event::Completed { .. })),
        metrics.completed()
    );
    assert_eq!(
        count(&|e| matches!(e, Event::Expired { .. })),
        metrics.expired()
    );
    // Started events equal the number of jobs that ever realized.
    let started = engine
        .jobs()
        .iter()
        .filter(|j| j.realized().is_some())
        .count();
    assert_eq!(count(&|e| matches!(e, Event::Started { .. })), started);
}

#[test]
fn engine_runs_are_reproducible_per_policy() {
    let (topo, requests, cfg) = world(60, 6, 4);
    let paths = topo.shortest_paths();
    for make in 0..4usize {
        let run = |requests: Vec<Request>| {
            let mut engine = Engine::new(&topo, &paths, requests, cfg);
            let mut policy = policies(cfg.horizon).remove(make);
            engine.run(policy.as_mut()).unwrap()
        };
        let a = run(requests.clone());
        let b = run(requests.clone());
        assert_eq!(a, b);
    }
}
