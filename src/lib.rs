//! # mec-ar
//!
//! A full Rust reproduction of **"Online Learning Algorithms for Offloading
//! Augmented Reality Requests with Uncertain Demands in MECs"** (ICDCS
//! 2021): the MEC network model, the uncertain-demand AR workload, the
//! slot-indexed LP relaxation with its 1/8-approximation rounding
//! (`Appro`), the migration heuristic (`Heu`), the exact ILP solver, the
//! Lipschitz-bandit online scheduler (`DynamicRR`), and the OCORP / Greedy
//! / HeuKKT baselines — plus the simulation engine and experiment harness
//! that regenerate every figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates so
//! downstream users can depend on one name.
//!
//! ## Quickstart
//!
//! ```
//! use mec_ar::prelude::*;
//!
//! // 1. A 20-station MEC backhaul and 100 AR requests with uncertain
//! //    (rate, reward) demands, per the paper's §VI-A defaults.
//! let topo = TopologyBuilder::new(20).seed(7).build();
//! let requests = WorkloadBuilder::new(&topo).seed(7).count(100).build();
//!
//! // 2. Offline reward maximization with the 1/8-approximation.
//! let instance = Instance::new(topo, requests, InstanceParams::default());
//! let realized = Realizations::draw(&instance, 7);
//! let outcome = Appro::new(7).solve(&instance, &realized).unwrap();
//! assert!(outcome.metrics().total_reward() > 0.0);
//! ```
//!
//! ## Layout
//!
//! | Crate | Contents |
//! |---|---|
//! | [`topology`] | backhaul graph, Waxman generation, shortest paths, resource slots |
//! | [`workload`] | AR requests, demand distributions, arrival processes, traces |
//! | [`lp`] | two-phase simplex + branch-and-bound ILP |
//! | [`bandit`] | successive elimination, UCB1, ε-greedy, Lipschitz domains |
//! | [`sim`] | discrete time-slot engine with preemption and validation |
//! | [`core`] | the paper's algorithms and baselines |
//! | [`serve`] | sharded long-running serving runtime with supervision and chaos |
//! | [`obs`] | metrics registry, event tracing, scrape server, trace reports |
//! | [`placement`] | service catalog, per-BS caches, live join/leave/drain reconfiguration |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mec_bandit as bandit;
pub use mec_core as core;
pub use mec_lp as lp;
pub use mec_obs as obs;
pub use mec_placement as placement;
pub use mec_serve as serve;
pub use mec_sim as sim;
pub use mec_topology as topology;
pub use mec_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use mec_bandit::{
        BanditPolicy, ConfidenceSchedule, LipschitzDomain, SuccessiveElimination,
    };
    pub use mec_core::model::{Instance, InstanceParams, Realizations};
    pub use mec_core::{
        hindsight_bound, Appro, DynamicRr, DynamicRrConfig, Exact, Greedy, Heu, HeuKkt, Learner,
        Ocorp, OfflineAlgorithm, OffloadOutcome, OnlineGreedy, OnlineHeuKkt, OnlineOcorp,
    };
    pub use mec_obs::{MetricsServer, Registry};
    pub use mec_serve::{serve, LoadGen, ObsHub, ServeConfig, Snapshot};
    pub use mec_sim::{
        Allocation, Continuity, Engine, Metrics, SlotConfig, SlotContext, SlotPolicy,
    };
    pub use mec_topology::{
        BaseStation, Compute, DataRate, Latency, StationId, Topology, TopologyBuilder,
        TopologyStats,
    };
    pub use mec_workload::{
        parse_requests, write_requests, ArTraceConfig, ArrivalProcess, DemandDistribution,
        DemandOutcome, PricingModel, Request, RequestId, Task, TaskKind, WorkloadBuilder,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let topo = TopologyBuilder::new(3).seed(0).build();
        assert_eq!(topo.station_count(), 3);
        let policy = SuccessiveElimination::new(2, ConfidenceSchedule::Anytime);
        assert_eq!(policy.arm_count(), 2);
    }
}
