//! AR streaming scenario: a day-in-the-life online run. Requests built
//! from the synthetic Braud-style AR trace (64 KB JPEG frames at 90-120
//! fps through the four-task pipeline) arrive over time; `DynamicRR`
//! learns its compute threshold on the fly and is compared against the
//! online baselines.
//!
//! Run with: `cargo run --release --example ar_streaming`

use mec_ar::prelude::*;

fn main() {
    let topo = TopologyBuilder::new(20).seed(7).build();
    let params = InstanceParams::default();

    // The trace statistics drive the demand distributions: aggregate rates
    // land inside the paper's [30, 50] MB/s band.
    let trace = ArTraceConfig::default();
    let pipeline = Task::reference_pipeline();
    let rates = trace.rate_levels(&pipeline);
    println!(
        "AR trace: {} KB/frame payload, rate levels {:?} MB/s",
        trace.frames.payload_kb(&pipeline),
        rates
            .iter()
            .map(|r| r.as_mbps().round())
            .collect::<Vec<_>>()
    );

    // 300 requests streaming in over 10 seconds (200 slots of 50 ms), each
    // lasting 3-6 seconds.
    let requests = WorkloadBuilder::new(&topo)
        .seed(7)
        .count(300)
        .duration_range(60, 120)
        .arrivals(ArrivalProcess::UniformOver { horizon: 200 })
        .build();
    let cfg = SlotConfig {
        horizon: 400,
        c_unit: params.c_unit,
        slot_ms: params.slot_ms,
        seed: 7,
        ..Default::default()
    };
    let paths = topo.shortest_paths();

    println!(
        "\n{:<18} {:>10} {:>12} {:>10} {:>9}",
        "policy", "reward $", "latency ms", "completed", "expired"
    );
    let mut policies: Vec<Box<dyn SlotPolicy>> = vec![
        Box::new(DynamicRr::new(DynamicRrConfig {
            horizon_hint: cfg.horizon,
            ..Default::default()
        })),
        Box::new(OnlineHeuKkt::new()),
        Box::new(OnlineOcorp::new()),
        Box::new(OnlineGreedy::new()),
    ];
    for policy in &mut policies {
        let mut engine = Engine::new(&topo, &paths, requests.clone(), cfg);
        let metrics = engine
            .run(policy.as_mut())
            .expect("built-in policies produce legal schedules");
        println!(
            "{:<18} {:>10.1} {:>12.2} {:>10} {:>9}  util {:>4.0}%",
            policy.name(),
            metrics.total_reward(),
            metrics.avg_latency_ms(),
            metrics.completed(),
            metrics.expired(),
            engine.avg_utilization() * 100.0
        );
    }

    // A short traced replay of DynamicRR's first second, to show the
    // engine's event log.
    let mut engine = Engine::new(&topo, &paths, requests, cfg);
    engine.enable_trace(24);
    let mut policy = DynamicRr::new(DynamicRrConfig {
        horizon_hint: cfg.horizon,
        ..Default::default()
    });
    let _ = engine.run(&mut policy).expect("legal schedules");
    println!("\nfirst events of the DynamicRR run:");
    print!("{}", engine.trace().expect("tracing enabled").render());
}
