//! Failure injection: what the engine and solvers refuse to accept.
//!
//! The slot engine validates every schedule a policy emits — this example
//! deliberately builds misbehaving policies and broken programs to show
//! each rejection path, the way an integrator would probe the system's
//! guardrails.
//!
//! Run with: `cargo run --release --example failure_injection`
//!
//! With `--features obs` the example also crashes a shard inside the
//! traced serving runtime and prints the fault/restart log plus the
//! admission funnel recovered from the event stream.

use mec_ar::lp::{Cmp, Problem, Sense};
use mec_ar::prelude::*;
use mec_ar::sim::SimError;

fn world() -> (Topology, Vec<Request>, SlotConfig) {
    let topo = TopologyBuilder::new(4).seed(1).build();
    let requests = WorkloadBuilder::new(&topo).seed(1).count(5).build();
    let cfg = SlotConfig {
        horizon: 20,
        ..Default::default()
    };
    (topo, requests, cfg)
}

struct OverCommitter;
impl SlotPolicy for OverCommitter {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        // Grants every job 10x a station's capacity.
        ctx.views
            .iter()
            .map(|v| Allocation {
                request: v.job.id(),
                station: 0.into(),
                compute: Compute::mhz(33_000.0),
            })
            .collect()
    }
    fn name(&self) -> &str {
        "over-committer"
    }
}

struct Duplicator;
impl SlotPolicy for Duplicator {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        ctx.views
            .iter()
            .flat_map(|v| {
                let a = Allocation {
                    request: v.job.id(),
                    station: 0.into(),
                    compute: Compute::mhz(10.0),
                };
                [a, a]
            })
            .collect()
    }
    fn name(&self) -> &str {
        "duplicator"
    }
}

struct GhostScheduler;
impl SlotPolicy for GhostScheduler {
    fn schedule(&mut self, _ctx: &SlotContext<'_>) -> Vec<Allocation> {
        vec![Allocation {
            request: RequestId(999),
            station: 0.into(),
            compute: Compute::mhz(10.0),
        }]
    }
    fn name(&self) -> &str {
        "ghost-scheduler"
    }
}

fn probe(policy: &mut dyn SlotPolicy) -> SimError {
    let (topo, requests, cfg) = world();
    let paths = topo.shortest_paths();
    let mut engine = Engine::new(&topo, &paths, requests, cfg);
    engine
        .run(policy)
        .expect_err("the engine must reject this policy")
}

fn main() {
    println!("== engine guardrails ==");
    for policy in [
        &mut OverCommitter as &mut dyn SlotPolicy,
        &mut Duplicator,
        &mut GhostScheduler,
    ] {
        let err = probe(policy);
        println!("{:<16} -> {err}", policy.name());
        match policy.name() {
            "over-committer" => assert!(matches!(err, SimError::CapacityExceeded { .. })),
            "duplicator" => assert!(matches!(err, SimError::DuplicateAllocation(_))),
            _ => assert!(matches!(err, SimError::UnknownRequest(_))),
        }
    }

    println!("\n== solver guardrails ==");
    // Infeasible program: 1 <= x <= 0.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var(1.0);
    p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
    p.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.0);
    println!("infeasible LP   -> {}", p.solve().unwrap_err());

    // Unbounded program: max x with no ceiling.
    let mut p = Problem::new(Sense::Maximize);
    let _ = p.add_var(1.0);
    println!("unbounded LP    -> {}", p.solve().unwrap_err());

    // Demand distributions validate their probabilities.
    let bad = DemandDistribution::new(vec![DemandOutcome {
        rate: DataRate::mbps(30.0),
        prob: 0.7,
        reward: 100.0,
    }]);
    println!("bad demand      -> {}", bad.unwrap_err());

    println!("\nall injected failures were caught");

    #[cfg(feature = "obs")]
    traced_fault_summary();
}

/// Crashes a shard mid-run under tracing and summarizes the fault,
/// restart, and funnel events the runtime recorded about it.
#[cfg(feature = "obs")]
fn traced_fault_summary() {
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Captured(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Captured {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let topo = TopologyBuilder::new(8).seed(1).build();
    let population = WorkloadBuilder::new(&topo).seed(1).count(300).build();
    let load = LoadGen::poisson(population, 2_000.0, 50.0, 1);
    let sink = Captured::default();
    let hub = ObsHub::new().with_trace(mec_ar::obs::TraceWriter::new(Box::new(sink.clone())));
    let chaos = mec_ar::serve::ChaosSpec::parse("crash:shard=1@slot=30,recover@slot=40")
        .expect("chaos grammar");
    let cfg = ServeConfig {
        shards: 2,
        queue_capacity: 64,
        snapshot_every: 0,
        chaos,
        obs: Some(Arc::new(hub)),
        ..ServeConfig::default()
    };
    serve(&topo, load, &cfg, |_| {}).expect("chaos serve run");
    if let Some(hub) = &cfg.obs {
        hub.flush();
    }

    let bytes = sink.0.lock().unwrap();
    let text = String::from_utf8_lossy(&bytes);
    let report = mec_ar::obs::build_report(text.lines()).expect("well-formed trace");
    println!("\n== traced shard crash (--features obs) ==");
    println!("events captured: {}", report.events);
    let offered: u64 = report.funnel.values().sum();
    print!("funnel: offered {offered}");
    for key in ["admitted", "buffered", "spilled", "shed", "shed_down"] {
        print!(" | {key} {}", report.funnel.get(key).copied().unwrap_or(0));
    }
    println!();
    for (slot, shard, kind) in &report.faults_injected {
        println!("  slot {slot:>5}  shard {shard}  injected: {kind}");
    }
    for (slot, shard, reason) in &report.faults_detected {
        println!("  slot {slot:>5}  shard {shard}  detected: {reason}");
    }
    for r in &report.restarts {
        println!(
            "  slot {:>5}  shard {}  restart {}: {} arrival(s) replayed, outage {} slot(s)",
            r.slot,
            r.shard,
            if r.ok { "recovered" } else { "failed" },
            r.replayed,
            r.latency_slots
        );
    }
    assert!(
        !report.faults_injected.is_empty(),
        "the scripted crash must appear in the trace"
    );
}
