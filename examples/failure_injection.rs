//! Failure injection: what the engine and solvers refuse to accept.
//!
//! The slot engine validates every schedule a policy emits — this example
//! deliberately builds misbehaving policies and broken programs to show
//! each rejection path, the way an integrator would probe the system's
//! guardrails.
//!
//! Run with: `cargo run --release --example failure_injection`

use mec_ar::lp::{Cmp, Problem, Sense};
use mec_ar::prelude::*;
use mec_ar::sim::SimError;

fn world() -> (Topology, Vec<Request>, SlotConfig) {
    let topo = TopologyBuilder::new(4).seed(1).build();
    let requests = WorkloadBuilder::new(&topo).seed(1).count(5).build();
    let cfg = SlotConfig {
        horizon: 20,
        ..Default::default()
    };
    (topo, requests, cfg)
}

struct OverCommitter;
impl SlotPolicy for OverCommitter {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        // Grants every job 10x a station's capacity.
        ctx.views
            .iter()
            .map(|v| Allocation {
                request: v.job.id(),
                station: 0.into(),
                compute: Compute::mhz(33_000.0),
            })
            .collect()
    }
    fn name(&self) -> &str {
        "over-committer"
    }
}

struct Duplicator;
impl SlotPolicy for Duplicator {
    fn schedule(&mut self, ctx: &SlotContext<'_>) -> Vec<Allocation> {
        ctx.views
            .iter()
            .flat_map(|v| {
                let a = Allocation {
                    request: v.job.id(),
                    station: 0.into(),
                    compute: Compute::mhz(10.0),
                };
                [a, a]
            })
            .collect()
    }
    fn name(&self) -> &str {
        "duplicator"
    }
}

struct GhostScheduler;
impl SlotPolicy for GhostScheduler {
    fn schedule(&mut self, _ctx: &SlotContext<'_>) -> Vec<Allocation> {
        vec![Allocation {
            request: RequestId(999),
            station: 0.into(),
            compute: Compute::mhz(10.0),
        }]
    }
    fn name(&self) -> &str {
        "ghost-scheduler"
    }
}

fn probe(policy: &mut dyn SlotPolicy) -> SimError {
    let (topo, requests, cfg) = world();
    let paths = topo.shortest_paths();
    let mut engine = Engine::new(&topo, &paths, requests, cfg);
    engine
        .run(policy)
        .expect_err("the engine must reject this policy")
}

fn main() {
    println!("== engine guardrails ==");
    for policy in [
        &mut OverCommitter as &mut dyn SlotPolicy,
        &mut Duplicator,
        &mut GhostScheduler,
    ] {
        let err = probe(policy);
        println!("{:<16} -> {err}", policy.name());
        match policy.name() {
            "over-committer" => assert!(matches!(err, SimError::CapacityExceeded { .. })),
            "duplicator" => assert!(matches!(err, SimError::DuplicateAllocation(_))),
            _ => assert!(matches!(err, SimError::UnknownRequest(_))),
        }
    }

    println!("\n== solver guardrails ==");
    // Infeasible program: 1 <= x <= 0.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var(1.0);
    p.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
    p.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.0);
    println!("infeasible LP   -> {}", p.solve().unwrap_err());

    // Unbounded program: max x with no ceiling.
    let mut p = Problem::new(Sense::Maximize);
    let _ = p.add_var(1.0);
    println!("unbounded LP    -> {}", p.solve().unwrap_err());

    // Demand distributions validate their probabilities.
    let bad = DemandDistribution::new(vec![DemandOutcome {
        rate: DataRate::mbps(30.0),
        prob: 0.7,
        reward: 100.0,
    }]);
    println!("bad demand      -> {}", bad.unwrap_err());

    println!("\nall injected failures were caught");
}
