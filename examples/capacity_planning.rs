//! Capacity planning: how many base stations does a reward target need?
//! Sweeps the network size under the paper's default workload, comparing
//! the exact optimum (small nets), the LP upper bound, and `Heu` — the
//! kind of what-if a provider would run before densifying a deployment.
//!
//! Run with: `cargo run --release --example capacity_planning`

use mec_ar::core::slotlp::{SlotLp, Truncation};
use mec_ar::prelude::*;

fn main() {
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>10}",
        "|BS|", "LP bound $", "Heu reward $", "admitted", "util %"
    );
    for stations in [4usize, 8, 12, 16, 20, 30] {
        let topo = TopologyBuilder::new(stations).seed(11).build();
        let total_capacity = topo.total_capacity();
        let requests = WorkloadBuilder::new(&topo).seed(11).count(150).build();
        let instance = Instance::new(topo, requests, InstanceParams::default());
        let realized = Realizations::draw(&instance, 11);

        // The LP optimum is a certified upper bound on any policy (Lemma 1).
        let subset: Vec<usize> = (0..instance.request_count()).collect();
        let lp = SlotLp::build(&instance, &subset, Truncation::Standard);
        let bound = lp
            .solve(subset.len())
            .expect("slot LP is feasible")
            .objective();

        let out = Heu::new(11)
            .solve(&instance, &realized)
            .expect("heu succeeds");
        // Realized compute the admitted requests demand, vs the network.
        let used: f64 = out
            .assignment()
            .iter()
            .enumerate()
            .filter_map(|(j, a)| a.map(|_| instance.demand_of(realized.outcome(j).rate).as_mhz()))
            .sum();
        println!(
            "{:>5} {:>14.1} {:>14.1} {:>12} {:>9.1}%",
            stations,
            bound,
            out.metrics().total_reward(),
            out.admitted(),
            100.0 * used / total_capacity.as_mhz()
        );
    }
    println!("\nreward saturates once every request fits; past that point extra stations only cut latency");
}
