//! Quickstart: build an MEC network, generate an uncertain AR workload,
//! and compare the paper's offline algorithms on one instance.
//!
//! Run with: `cargo run --release --example quickstart`

use mec_ar::prelude::*;

fn main() {
    // A 20-station backhaul (GT-ITM-style Waxman graph) with the paper's
    // §VI-A capacities, and 150 AR requests whose (rate, reward) pairs are
    // uncertain until scheduled.
    let topo = TopologyBuilder::new(20).seed(42).build();
    println!(
        "network: {} stations, {} backhaul links, {:.0} MHz total compute",
        topo.station_count(),
        topo.edge_count(),
        topo.total_capacity().as_mhz()
    );

    let requests = WorkloadBuilder::new(&topo).seed(42).count(150).build();
    let expected_reward: f64 = requests.iter().map(|r| r.demand().expected_reward()).sum();
    println!(
        "workload: {} requests, {:.0} $ total expected reward if everything were served\n",
        requests.len(),
        expected_reward
    );

    // One shared world: demands realize identically for every algorithm.
    let instance = Instance::new(topo, requests, InstanceParams::default());
    let realized = Realizations::draw(&instance, 42);

    let algorithms: Vec<Box<dyn OfflineAlgorithm>> = vec![
        Box::new(Appro::new(42)),
        Box::new(Heu::new(42)),
        Box::new(HeuKkt::new()),
        Box::new(Ocorp::new()),
        Box::new(Greedy::new()),
    ];
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>12}",
        "algo", "reward $", "latency ms", "admitted", "runtime ms"
    );
    for algo in algorithms {
        let out = algo
            .solve(&instance, &realized)
            .expect("offline algorithms succeed on well-formed instances");
        println!(
            "{:<8} {:>10.1} {:>12.2} {:>10} {:>12.1}",
            algo.name(),
            out.metrics().total_reward(),
            out.metrics().avg_latency_ms(),
            out.admitted(),
            out.runtime().as_secs_f64() * 1000.0
        );
    }
}
