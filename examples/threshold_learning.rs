//! Threshold learning, inside-out: watch `DynamicRR`'s Lipschitz bandit
//! discretize the threshold interval, explore the arms, and eliminate the
//! dominated ones — then compare the learned threshold's reward against
//! every fixed threshold (the regret oracle of Theorem 3).
//!
//! Run with: `cargo run --release --example threshold_learning`
//!
//! With `--features obs` the example also drives the same workload
//! through the traced serving runtime and prints a mini admission
//! funnel + elimination summary from the captured event stream; with
//! `--features prof` it additionally prints the hottest profiler
//! phases of the learning run.

use mec_ar::prelude::*;

fn run_once(
    topo: &Topology,
    requests: &[Request],
    cfg: SlotConfig,
    lo: f64,
    hi: f64,
    kappa: usize,
) -> (f64, f64, usize) {
    let paths = topo.shortest_paths();
    let mut engine = Engine::new(topo, &paths, requests.to_vec(), cfg);
    let mut policy = DynamicRr::new(DynamicRrConfig {
        threshold_lo_mhz: lo,
        threshold_hi_mhz: hi,
        kappa,
        horizon_hint: cfg.horizon,
        ..Default::default()
    });
    let metrics = engine.run(&mut policy).expect("legal schedules");
    (
        metrics.total_reward(),
        policy.learned_threshold(),
        policy.active_arms(),
    )
}

fn main() {
    let topo = TopologyBuilder::new(20).seed(3).build();
    let params = InstanceParams::default();
    // Saturated load: the threshold choice actually matters here.
    let requests = WorkloadBuilder::new(&topo)
        .seed(3)
        .count(300)
        .duration_range(60, 120)
        .arrivals(ArrivalProcess::UniformOver { horizon: 200 })
        .build();
    let cfg = SlotConfig {
        horizon: 400,
        c_unit: params.c_unit,
        slot_ms: params.slot_ms,
        seed: 3,
        ..Default::default()
    };

    // Every fixed threshold (κ = 1 collapses the bandit to one arm).
    let domain = LipschitzDomain::new(100.0, 1000.0, 9);
    println!("{:<22} {:>10}", "threshold (MHz)", "reward $");
    let mut best = f64::MIN;
    for v in domain.values() {
        let (reward, _, _) = run_once(&topo, &requests, cfg, v, v, 1);
        best = best.max(reward);
        println!("{:<22.0} {:>10.1}", v, reward);
    }

    // The learner over the full interval.
    let (reward, learned, active) = run_once(&topo, &requests, cfg, 100.0, 1000.0, 9);
    println!("\nDynamicRR learned threshold {learned:.0} MHz ({active} arms still active)");
    println!("DynamicRR reward {reward:.1} vs best fixed {best:.1}");
    println!("end-to-end regret: {:.1}", best - reward);

    // Theorem 3's tradeoff: finer grids shrink the discretization error
    // but raise the bandit term.
    println!("\nregret-bound tradeoff (T = 400, eta = 0.5):");
    for kappa in [3usize, 9, 27, 81] {
        let d = LipschitzDomain::new(100.0, 1000.0, kappa);
        println!(
            "  kappa {:>3}: eps = {:>6.1} MHz, bound = {:.0}",
            kappa,
            d.epsilon(),
            d.regret_bound(0.5, 400)
        );
    }

    #[cfg(feature = "obs")]
    traced_serve_summary();
    #[cfg(feature = "prof")]
    phase_summary(&topo, &requests, cfg);
}

/// Replays a small traced serving run of the same kind of workload and
/// folds its event stream into a funnel + elimination summary.
#[cfg(feature = "obs")]
fn traced_serve_summary() {
    use std::sync::{Arc, Mutex};

    // An in-memory byte sink for the trace: the report is built straight
    // from the captured lines, no temp file involved.
    #[derive(Clone, Default)]
    struct Captured(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Captured {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let topo = TopologyBuilder::new(12).seed(3).build();
    let population = WorkloadBuilder::new(&topo).seed(3).count(400).build();
    let load = LoadGen::poisson(population, 2_000.0, 50.0, 3);
    let sink = Captured::default();
    let hub = ObsHub::new()
        .with_trace(mec_ar::obs::TraceWriter::new(Box::new(sink.clone())))
        .with_telemetry_every(25);
    let cfg = ServeConfig {
        shards: 2,
        queue_capacity: 64,
        snapshot_every: 0,
        obs: Some(Arc::new(hub)),
        ..ServeConfig::default()
    };
    serve(&topo, load, &cfg, |_| {}).expect("traced serve run");
    if let Some(hub) = &cfg.obs {
        hub.flush();
    }

    let bytes = sink.0.lock().unwrap();
    let text = String::from_utf8_lossy(&bytes);
    let report = mec_ar::obs::build_report(text.lines()).expect("well-formed trace");
    println!("\n== traced serving run (--features obs) ==");
    println!("events captured: {}", report.events);
    let offered: u64 = report.funnel.values().sum();
    print!("funnel: offered {offered}");
    for key in ["admitted", "buffered", "spilled", "shed"] {
        print!(" | {key} {}", report.funnel.get(key).copied().unwrap_or(0));
    }
    println!();
    println!(
        "arm eliminations observed: {} across {} shard(s)",
        report.eliminations.len(),
        cfg.shards
    );
    for e in report.eliminations.iter().take(5) {
        println!(
            "  slot {:>5}  shard {}  arm {} ({:.0} MHz) out, {} left",
            e.slot, e.shard, e.arm, e.value_mhz, e.active_left
        );
    }
}

/// Profiles one learning run and prints the hottest phases.
#[cfg(feature = "prof")]
fn phase_summary(topo: &Topology, requests: &[Request], cfg: SlotConfig) {
    use mec_ar::obs::prof;
    prof::reset();
    prof::set_enabled(true);
    let _ = run_once(topo, requests, cfg, 100.0, 1000.0, 9);
    prof::set_enabled(false);
    let report = prof::take_report();
    println!("\n== profiled learning run (--features prof) ==");
    print!("{}", report.render_text(5));
}
