//! Threshold learning, inside-out: watch `DynamicRR`'s Lipschitz bandit
//! discretize the threshold interval, explore the arms, and eliminate the
//! dominated ones — then compare the learned threshold's reward against
//! every fixed threshold (the regret oracle of Theorem 3).
//!
//! Run with: `cargo run --release --example threshold_learning`

use mec_ar::prelude::*;

fn run_once(
    topo: &Topology,
    requests: &[Request],
    cfg: SlotConfig,
    lo: f64,
    hi: f64,
    kappa: usize,
) -> (f64, f64, usize) {
    let paths = topo.shortest_paths();
    let mut engine = Engine::new(topo, &paths, requests.to_vec(), cfg);
    let mut policy = DynamicRr::new(DynamicRrConfig {
        threshold_lo_mhz: lo,
        threshold_hi_mhz: hi,
        kappa,
        horizon_hint: cfg.horizon,
        ..Default::default()
    });
    let metrics = engine.run(&mut policy).expect("legal schedules");
    (
        metrics.total_reward(),
        policy.learned_threshold(),
        policy.active_arms(),
    )
}

fn main() {
    let topo = TopologyBuilder::new(20).seed(3).build();
    let params = InstanceParams::default();
    // Saturated load: the threshold choice actually matters here.
    let requests = WorkloadBuilder::new(&topo)
        .seed(3)
        .count(300)
        .duration_range(60, 120)
        .arrivals(ArrivalProcess::UniformOver { horizon: 200 })
        .build();
    let cfg = SlotConfig {
        horizon: 400,
        c_unit: params.c_unit,
        slot_ms: params.slot_ms,
        seed: 3,
        ..Default::default()
    };

    // Every fixed threshold (κ = 1 collapses the bandit to one arm).
    let domain = LipschitzDomain::new(100.0, 1000.0, 9);
    println!("{:<22} {:>10}", "threshold (MHz)", "reward $");
    let mut best = f64::MIN;
    for v in domain.values() {
        let (reward, _, _) = run_once(&topo, &requests, cfg, v, v, 1);
        best = best.max(reward);
        println!("{:<22.0} {:>10.1}", v, reward);
    }

    // The learner over the full interval.
    let (reward, learned, active) = run_once(&topo, &requests, cfg, 100.0, 1000.0, 9);
    println!("\nDynamicRR learned threshold {learned:.0} MHz ({active} arms still active)");
    println!("DynamicRR reward {reward:.1} vs best fixed {best:.1}");
    println!("end-to-end regret: {:.1}", best - reward);

    // Theorem 3's tradeoff: finer grids shrink the discretization error
    // but raise the bandit term.
    println!("\nregret-bound tradeoff (T = 400, eta = 0.5):");
    for kappa in [3usize, 9, 27, 81] {
        let d = LipschitzDomain::new(100.0, 1000.0, kappa);
        println!(
            "  kappa {:>3}: eps = {:>6.1} MHz, bound = {:.0}",
            kappa,
            d.epsilon(),
            d.regret_bound(0.5, 400)
        );
    }
}
