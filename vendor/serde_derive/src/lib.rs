//! No-op `Serialize`/`Deserialize` derive macros backing the offline
//! `serde` shim: the workspace only ever *derives* the traits, so the
//! expansion can be empty.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
