//! Offline vendored micro-benchmark harness.
//!
//! Exposes the `criterion` API subset this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`] and [`black_box`] — backed by a simple
//! `std::time::Instant` loop instead of criterion's statistical engine.
//! Each benchmark prints `name/param: <mean per iteration>` to stdout.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration outside the timed window.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!("{}/{label}: {:.3} ms/iter", self.name, per_iter * 1e3);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Runs one benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.into(), &mut f);
        self
    }

    /// Ends the group (upstream reports summaries here; the shim has
    /// nothing buffered).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, &mut f);
        group.finish();
        self
    }
}

/// Bundles benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
