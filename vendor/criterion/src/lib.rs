//! Offline vendored micro-benchmark harness.
//!
//! Exposes the `criterion` API subset this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`] and [`black_box`] — backed by a simple
//! `std::time::Instant` loop instead of criterion's statistical engine.
//! Each benchmark prints `name/param: <mean per iteration>` to stdout.
//!
//! On top of the upstream-compatible surface, every bench target also
//! emits a normalized result file `BENCH_<target>.json` (schema below)
//! for the `mec-bench-gate` perf-regression gate:
//!
//! ```json
//! {"schema":1,"bench":"lp_solver","machine":{"cpus":8,"os":"linux",
//!  "arch":"x86_64"},"results":[{"name":"solve/120","samples":10,
//!  "mean_ns":12345,"median_ns":12000,"p95_ns":15000,
//!  "throughput_iters_per_sec":81300.8}]}
//! ```
//!
//! The file lands in `<workspace>/results/` (derived from the bench
//! target's manifest dir); `MEC_BENCH_JSON_DIR` overrides the directory
//! and `MEC_BENCH_JSON=0` disables emission. No timestamps are written,
//! so a rerun on identical hardware produces structurally identical
//! files.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over this bencher's iteration budget, keeping one
    /// timing sample per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration outside the timed window.
        black_box(f());
        self.samples.clear();
        self.samples.reserve(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Aggregated timings of one benchmark, as written to `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Full label, `group/function/param`.
    pub name: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: u64,
    /// Median nanoseconds per iteration.
    pub median_ns: u64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: u64,
    /// Iterations per second implied by the mean.
    pub throughput_iters_per_sec: f64,
}

impl BenchStats {
    /// Summarizes raw per-iteration samples.
    pub fn from_samples(name: String, samples: &[Duration]) -> Self {
        let mut ns: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        let n = ns.len().max(1);
        let total: u128 = ns.iter().sum();
        let mean = (total / n as u128) as u64;
        let median = ns.get(n / 2).copied().unwrap_or(0) as u64;
        // Nearest-rank p95 (1-based rank ceil(0.95 n)).
        let rank = (n * 95).div_ceil(100).max(1);
        let p95 = ns.get(rank - 1).copied().unwrap_or(0) as u64;
        Self {
            name,
            samples: samples.len() as u64,
            mean_ns: mean,
            median_ns: median,
            p95_ns: p95,
            throughput_iters_per_sec: if mean == 0 { 0.0 } else { 1e9 / mean as f64 },
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"samples\":{},\"mean_ns\":{},\"median_ns\":{},\
             \"p95_ns\":{},\"throughput_iters_per_sec\":{:.3}}}",
            escape(&self.name),
            self.samples,
            self.mean_ns,
            self.median_ns,
            self.p95_ns,
            self.throughput_iters_per_sec,
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A computed (not timed) scalar attached to the report — e.g. the
/// parallel efficiency a scaling bench derives from its own timings.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedStat {
    /// Full label, `group/metric/param`.
    pub name: String,
    /// The value.
    pub value: f64,
    /// Unit tag (`"ratio"`, `"it/s"`, ...), informational.
    pub unit: String,
}

impl DerivedStat {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"value\":{:.4},\"unit\":\"{}\"}}",
            escape(&self.name),
            self.value,
            escape(&self.unit),
        )
    }
}

/// Results recorded by every group in this process, drained by
/// [`write_report`] at the end of `main`.
static RESULTS: Mutex<Vec<BenchStats>> = Mutex::new(Vec::new());

/// Derived scalars recorded via [`record_derived`], drained with the
/// results.
static DERIVED: Mutex<Vec<DerivedStat>> = Mutex::new(Vec::new());

/// A copy of every [`BenchStats`] recorded so far in this process —
/// lets a bench function compute derived metrics (ratios across
/// parameters) from the timings earlier groups produced.
pub fn collected() -> Vec<BenchStats> {
    RESULTS.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Records a derived scalar for the report's `"derived"` array.
pub fn record_derived(name: impl Into<String>, value: f64, unit: impl Into<String>) {
    DERIVED
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(DerivedStat {
            name: name.into(),
            value,
            unit: unit.into(),
        });
}

/// Renders the normalized report for the collected results.
pub fn render_report(bench: &str, results: &[BenchStats]) -> String {
    render_report_full(bench, results, &[])
}

/// [`render_report`] plus a `"derived"` array of computed scalars
/// (omitted entirely when empty, so reports without derived metrics are
/// byte-identical to the pre-derived schema).
pub fn render_report_full(bench: &str, results: &[BenchStats], derived: &[DerivedStat]) -> String {
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut out = format!(
        "{{\"schema\":1,\"bench\":\"{}\",\"machine\":{{\"cpus\":{},\"os\":\"{}\",\"arch\":\"{}\"}},\"results\":[",
        escape(bench),
        cpus,
        std::env::consts::OS,
        std::env::consts::ARCH,
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push(']');
    if !derived.is_empty() {
        out.push_str(",\"derived\":[");
        for (i, d) in derived.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push(']');
    }
    out.push_str("}\n");
    out
}

/// Drains the collected results and writes `BENCH_<bench>.json`.
///
/// Called by the `main` that [`criterion_main!`] generates; `bench` is
/// the bench target's crate name and `manifest_dir` its
/// `CARGO_MANIFEST_DIR`. Honors `MEC_BENCH_JSON=0` (skip) and
/// `MEC_BENCH_JSON_DIR` (output directory, default
/// `<manifest>/../../results`). Emission failures only warn: a missing
/// results directory must not fail the benchmark run itself.
pub fn write_report(bench: &str, manifest_dir: &str) {
    let results = std::mem::take(&mut *RESULTS.lock().unwrap_or_else(|p| p.into_inner()));
    let derived = std::mem::take(&mut *DERIVED.lock().unwrap_or_else(|p| p.into_inner()));
    if std::env::var("MEC_BENCH_JSON").is_ok_and(|v| v == "0") {
        return;
    }
    let dir = std::env::var("MEC_BENCH_JSON_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::Path::new(manifest_dir).join("../../results"));
    let path = dir.join(format!("BENCH_{bench}.json"));
    let report = render_report_full(bench, &results, &derived);
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, report)) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("bench results -> {}", path.display());
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let stats = BenchStats::from_samples(format!("{}/{label}", self.name), &b.samples);
        println!("{}: {:.3} ms/iter", stats.name, stats.mean_ns as f64 / 1e6);
        RESULTS
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(stats);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Runs one benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.into(), &mut f);
        self
    }

    /// Ends the group (upstream reports summaries here; the shim has
    /// nothing buffered).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, &mut f);
        group.finish();
        self
    }
}

/// Bundles benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, then writing the normalized
/// `BENCH_<target>.json` result file.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_report(env!("CARGO_CRATE_NAME"), env!("CARGO_MANIFEST_DIR"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_records() {
        benches();
        let recorded = RESULTS.lock().unwrap_or_else(|p| p.into_inner());
        let stats = recorded
            .iter()
            .find(|s| s.name == "shim/sum/100")
            .expect("recorded stats");
        assert_eq!(stats.samples, 3);
        assert!(stats.median_ns <= stats.p95_ns);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn stats_from_known_samples() {
        let samples: Vec<Duration> = [100u64, 200, 300, 400, 500]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let s = BenchStats::from_samples("x".into(), &samples);
        assert_eq!(s.samples, 5);
        assert_eq!(s.mean_ns, 300);
        assert_eq!(s.median_ns, 300);
        assert_eq!(s.p95_ns, 500);
        assert!((s.throughput_iters_per_sec - 1e9 / 300.0).abs() < 1.0);
    }

    #[test]
    fn report_is_parseable_shape() {
        let s = BenchStats::from_samples("a/b".into(), &[Duration::from_nanos(10)]);
        let text = render_report("demo", &[s]);
        assert!(text.starts_with("{\"schema\":1,\"bench\":\"demo\""));
        assert!(text.contains("\"median_ns\":10"));
        assert!(text.trim_end().ends_with("]}"));
        assert!(!text.contains("derived"), "empty derived array is omitted");
    }

    #[test]
    fn derived_stats_join_the_report() {
        let s = BenchStats::from_samples("g/f/1".into(), &[Duration::from_nanos(10)]);
        let d = DerivedStat {
            name: "g/efficiency/4".into(),
            value: 0.4321,
            unit: "ratio".into(),
        };
        let text = render_report_full("demo", &[s], &[d]);
        assert!(
            text.contains(
                "\"derived\":[{\"name\":\"g/efficiency/4\",\"value\":0.4321,\"unit\":\"ratio\"}]"
            ),
            "{text}"
        );
        assert!(text.trim_end().ends_with('}'));
    }
}
