//! Offline vendored mini property-testing harness.
//!
//! Implements the `proptest` API subset this workspace's `tests/properties.rs`
//! files use: the [`proptest!`] macro, numeric range strategies, tuple
//! strategies, `prop::collection::vec`, [`strategy::Strategy::prop_map`],
//! `prop_assert!`/`prop_assert_eq!`, and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! per-test generator (seeded from the test's name), and failing cases are
//! reported via ordinary `assert!` panics without shrinking. That keeps
//! runs reproducible in an environment with no crates.io access.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-case configuration and the deterministic input generator.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Deterministic input generator: one per property, seeded from the
    /// property's name so cases are stable across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from a test name (FNV-1a over the bytes).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type (for [`Union`]s).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::of(self)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Erases `strategy`'s concrete type.
        pub fn of<S>(strategy: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            BoxedStrategy(Box::new(move |rng| strategy.generate(rng)))
        }
    }

    /// Picks uniformly among several strategies for the same type; the
    /// backing store of [`crate::prop_oneof!`].
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `variants` (must be non-empty).
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "empty union");
            Self { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.variants.len());
            self.variants[idx].generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Picks uniformly among several strategies for one value type:
/// `prop_oneof![strat_a, strat_b, strat_c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::of($strat)),+
        ])
    };
}

/// Fails the current case with `assert!` semantics.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Fails the current case with `assert_eq!` semantics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Fails the current case with `assert_ne!` semantics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Namespace mirror of the crate root (`prop::collection::vec`).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(x in 1u32..10, v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            for e in v {
                prop_assert!((0.0..1.0).contains(&e));
            }
        }

        #[test]
        fn tuples_and_map(pair in (1u64..5, 0.5f64..1.0).prop_map(|(a, b)| a as f64 * b)) {
            prop_assert!(pair > 0.0 && pair < 5.0);
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
