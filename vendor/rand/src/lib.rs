//! Offline vendored shim of the tiny slice of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of trait definitions and generators it needs:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`), and [`rngs::StdRng`] (a xoshiro256++
//! generator — statistically strong, deterministic, and seedable, though
//! not stream-compatible with upstream `rand`'s ChaCha12-based `StdRng`).
//!
//! Only determinism *within this workspace* is promised; nothing here is
//! cryptographically secure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 (the
    /// same expansion upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait FromRandom {
    /// Draws a uniform value.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRandom for u64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for usize {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (the shim's stand-in for
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// Panics on empty ranges, matching upstream behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as FromRandom>::from_random(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as FromRandom>::from_random(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        <f64 as FromRandom>::from_random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand::rngs::StdRng`; seeded
    /// runs are reproducible within this workspace only.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mut below = 0usize;
        for _ in 0..n {
            if rng.gen::<f64>() < 0.5 {
                below += 1;
            }
        }
        let freq = below as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.01, "freq {freq}");
    }
}
