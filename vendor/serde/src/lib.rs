//! Offline vendored no-op shim of the `serde` surface this workspace
//! touches.
//!
//! The workspace marks data types `#[derive(Serialize, Deserialize)]` but
//! never routes them through a serde serializer (all on-disk exchange is
//! the hand-rolled CSV codec in `mec-workload` and the hand-rolled JSON in
//! `mec-serve`). With crates.io unreachable in the build environment, this
//! shim keeps those derives compiling: the derive macros expand to
//! nothing, and the marker traits exist so `use serde::{Serialize,
//! Deserialize}` resolves.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; never implemented or required.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; never implemented or
/// required.
pub trait Deserialize<'de> {}
