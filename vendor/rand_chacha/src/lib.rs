//! Offline vendored ChaCha-based generators for the workspace's `rand`
//! shim.
//!
//! [`ChaCha8Rng`] and [`ChaCha20Rng`] run the genuine ChaCha permutation
//! (8 and 20 double-rounds) over a 256-bit key with a 64-bit block
//! counter, so the statistical quality matches the real thing. Seeded
//! streams are deterministic within this workspace but are **not**
//! word-for-word compatible with the upstream `rand_chacha` crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream generator with `R` double-rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const R: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

impl<const R: usize> ChaChaRng<R> {
    /// The number of 32-bit words consumed from the stream so far — the
    /// generator's resumable position (mirrors the upstream crate's
    /// `get_word_pos`, truncated to `u64`).
    pub fn get_word_pos(&self) -> u64 {
        if self.idx >= 16 {
            // A refill is pending: everything through `counter` blocks has
            // been consumed.
            self.counter.wrapping_mul(16)
        } else {
            self.counter.wrapping_sub(1).wrapping_mul(16) + self.idx as u64
        }
    }

    /// Repositions the stream so the next output is word `pos` — the
    /// counterpart of [`ChaChaRng::get_word_pos`]. Seeking is O(1): only
    /// the block containing `pos` is regenerated.
    pub fn set_word_pos(&mut self, pos: u64) {
        self.counter = pos / 16;
        self.idx = 16;
        let offset = (pos % 16) as usize;
        if offset != 0 {
            self.refill();
            self.idx = offset;
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero; the counter provides the stream position.
        let input = state;
        for _ in 0..R {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

/// ChaCha with 8 double-rounds — the workspace's workhorse generator.
pub type ChaCha8Rng = ChaChaRng<4>;

/// ChaCha with 12 double-rounds.
pub type ChaCha12Rng = ChaChaRng<6>;

/// ChaCha with 20 double-rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn word_pos_round_trips_mid_block_and_on_boundaries() {
        for consumed in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let mut a = ChaCha8Rng::seed_from_u64(1234);
            for _ in 0..consumed {
                let _ = a.next_u32();
            }
            assert_eq!(a.get_word_pos(), consumed as u64, "consumed {consumed}");
            let mut b = ChaCha8Rng::seed_from_u64(1234);
            b.set_word_pos(a.get_word_pos());
            for i in 0..200 {
                assert_eq!(a.next_u32(), b.next_u32(), "consumed {consumed}, word {i}");
            }
        }
    }

    #[test]
    fn set_word_pos_rewinds() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..50).map(|_| rng.next_u32()).collect();
        rng.set_word_pos(0);
        let again: Vec<u32> = (0..50).map(|_| rng.next_u32()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
