//! Offline vendored ChaCha-based generators for the workspace's `rand`
//! shim.
//!
//! [`ChaCha8Rng`] and [`ChaCha20Rng`] run the genuine ChaCha permutation
//! (8 and 20 double-rounds) over a 256-bit key with a 64-bit block
//! counter, so the statistical quality matches the real thing. Seeded
//! streams are deterministic within this workspace but are **not**
//! word-for-word compatible with the upstream `rand_chacha` crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream generator with `R` double-rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const R: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero; the counter provides the stream position.
        let input = state;
        for _ in 0..R {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

/// ChaCha with 8 double-rounds — the workspace's workhorse generator.
pub type ChaCha8Rng = ChaChaRng<4>;

/// ChaCha with 12 double-rounds.
pub type ChaCha12Rng = ChaChaRng<6>;

/// ChaCha with 20 double-rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
